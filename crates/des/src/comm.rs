//! Partition communicator: the boundary-exchange primitive for the
//! partitioned (conservatively synchronized) simulation core.
//!
//! The engine shards the network by dragonfly group across workers; at every
//! window barrier each partition hands the communicator one byte frame per
//! peer (boundary events that cross into that peer's groups, plus merge
//! metadata) and receives the frames addressed to it. The trait is modeled
//! on the MPI-ish `SimCommunicator` used by parallel traffic simulators:
//! `rank`/`size` identify the partition, `exchange` is an all-to-all
//! personalized exchange with an implicit barrier. A future MPI-backed
//! implementation only has to provide these three methods; everything above
//! (windowed advance, deterministic merge) is transport-agnostic.
//!
//! The provided [`LocalThreadCommunicator`] connects threads of one process
//! through per-pair channels. Because every barrier is a full exchange (all
//! ranks send to all ranks every round, empty frames included) and channels
//! are FIFO, no round tags are needed: the k-th frame received from a peer
//! belongs to the k-th barrier.

use std::sync::mpsc::{channel, Receiver, Sender};

/// All-to-all boundary exchange between simulation partitions.
///
/// `exchange` is a synchronization point: it returns only after the frames
/// of **all** peers for this round have arrived, which is what makes the
/// conservative window protocol safe — after the call, a partition has seen
/// every boundary event scheduled into its territory up to the barrier.
pub trait SimCommunicator {
    /// This partition's index in `0..size()`.
    fn rank(&self) -> usize;
    /// Total number of partitions.
    fn size(&self) -> usize;
    /// Send `to_each[p]` to partition `p` (including `p == rank()`, which
    /// is returned locally) and receive one frame from every partition.
    /// `to_each.len()` must equal `size()`. The result is indexed by
    /// sender rank.
    fn exchange(&mut self, to_each: Vec<Vec<u8>>) -> Vec<Vec<u8>>;

    /// Send the same frame to every partition and collect all frames,
    /// indexed by sender rank (this rank's own frame included).
    fn broadcast(&mut self, frame: Vec<u8>) -> Vec<Vec<u8>> {
        let n = self.size();
        let mut to_each = Vec::with_capacity(n);
        for _ in 0..n.saturating_sub(1) {
            to_each.push(frame.clone());
        }
        to_each.push(frame);
        self.exchange(to_each)
    }
}

/// In-process communicator connecting the threads of one simulation run
/// through per-pair FIFO channels. Construct one mesh per run with
/// [`local_mesh`] and hand one communicator to each worker thread.
pub struct LocalThreadCommunicator {
    rank: usize,
    /// `txs[p]` sends to partition `p`; `txs[rank]` is unused (loopback is
    /// short-circuited in `exchange`).
    txs: Vec<Sender<Vec<u8>>>,
    /// `rxs[p]` receives from partition `p`; `rxs[rank]` is unused.
    rxs: Vec<Receiver<Vec<u8>>>,
}

impl SimCommunicator for LocalThreadCommunicator {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.txs.len()
    }

    fn exchange(&mut self, mut to_each: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let n = self.size();
        assert_eq!(to_each.len(), n, "exchange needs one frame per partition");
        // Loopback first so the self-frame survives the send loop.
        let own = std::mem::take(&mut to_each[self.rank]);
        for (p, frame) in to_each.into_iter().enumerate() {
            if p == self.rank {
                continue;
            }
            // Channels are unbounded, so sends never block; a send only
            // fails if the peer already hung up, i.e. it panicked.
            self.txs[p]
                .send(frame)
                // lint: allow(no-panic-paths) — a failed send means the peer partition already panicked; propagating that panic here is the correct (and only) escalation, there is no error channel back to the caller mid-window
                .unwrap_or_else(|_| panic!("partition {p} hung up (worker panicked?)"));
        }
        let mut out = Vec::with_capacity(n);
        for p in 0..n {
            if p == self.rank {
                out.push(Vec::new()); // replaced with `own` below
            } else {
                out.push(
                    self.rxs[p]
                        .recv()
                        // lint: allow(no-panic-paths) — a failed recv means the peer partition already panicked; the exchange protocol has no error path, so joining that panic is the only sound behavior
                        .unwrap_or_else(|_| panic!("partition {p} hung up (worker panicked?)")),
                );
            }
        }
        out[self.rank] = own;
        out
    }
}

/// Build a fully connected mesh of `n` in-process communicators, one per
/// partition, wired with a dedicated FIFO channel per ordered pair.
pub fn local_mesh(n: usize) -> Vec<LocalThreadCommunicator> {
    assert!(n > 0, "a mesh needs at least one partition");
    // senders[to][from] / receivers[to][from], built per ordered pair.
    let mut txs: Vec<Vec<Option<Sender<Vec<u8>>>>> = (0..n).map(|_| vec![None; n]).collect();
    let mut rxs: Vec<Vec<Option<Receiver<Vec<u8>>>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for from in 0..n {
        for to in 0..n {
            if from == to {
                continue;
            }
            let (tx, rx) = channel();
            txs[from][to] = Some(tx);
            rxs[to][from] = Some(rx);
        }
    }
    txs.into_iter()
        .zip(rxs)
        .enumerate()
        .map(|(rank, (tx_row, rx_row))| LocalThreadCommunicator {
            rank,
            txs: tx_row.into_iter().map(|t| t.unwrap_or_else(|| channel().0)).collect(),
            rxs: rx_row.into_iter().map(|r| r.unwrap_or_else(|| channel().1)).collect(),
        })
        .collect()
}

/// Little-endian frame writer for the compact boundary-exchange encoding.
/// Frames are an internal, same-build protocol: both ends run the same
/// binary, so there is no versioning and underruns are bugs (panics).
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    #[inline]
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    #[inline]
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    #[inline]
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` (bit pattern).
    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append raw bytes (length NOT included; write it yourself).
    #[inline]
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding the frame.
    pub fn into_frame(self) -> Vec<u8> {
        self.buf
    }
}

/// Reader matching [`WireWriter`]. Panics on underrun (protocol bug).
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    #[inline]
    fn take(&mut self, n: usize) -> &'a [u8] {
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// A fixed-width field as an owned array; `take` hands back exactly
    /// `N` bytes, so the copy never mismatches.
    #[inline]
    fn take_n<const N: usize>(&mut self) -> [u8; N] {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N));
        a
    }

    /// Read a `u8`.
    #[inline]
    pub fn u8(&mut self) -> u8 {
        let [b] = self.take_n::<1>();
        b
    }

    /// Read a `u16`.
    #[inline]
    pub fn u16(&mut self) -> u16 {
        u16::from_le_bytes(self.take_n())
    }

    /// Read a `u32`.
    #[inline]
    pub fn u32(&mut self) -> u32 {
        u32::from_le_bytes(self.take_n())
    }

    /// Read a `u64`.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        u64::from_le_bytes(self.take_n())
    }

    /// Read an `f64` (bit pattern).
    #[inline]
    pub fn f64(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    /// Read `n` raw bytes.
    #[inline]
    pub fn bytes(&mut self, n: usize) -> &'a [u8] {
        self.take(n)
    }

    /// Whether the whole frame has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.f64(-1.5);
        w.bytes(b"abc");
        let frame = w.into_frame();
        let mut r = WireReader::new(&frame);
        assert_eq!(r.u8(), 7);
        assert_eq!(r.u16(), 300);
        assert_eq!(r.u32(), 70_000);
        assert_eq!(r.u64(), u64::MAX - 1);
        assert_eq!(r.f64(), -1.5);
        assert_eq!(r.bytes(3), b"abc");
        assert!(r.is_empty());
    }

    #[test]
    fn single_partition_exchange_is_loopback() {
        let mut mesh = local_mesh(1);
        let got = mesh[0].exchange(vec![b"hello".to_vec()]);
        assert_eq!(got, vec![b"hello".to_vec()]);
        assert_eq!(mesh[0].rank(), 0);
        assert_eq!(mesh[0].size(), 1);
    }

    #[test]
    fn all_to_all_delivers_every_frame_to_the_right_rank() {
        let mesh = local_mesh(3);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let me = comm.rank();
                    let frames =
                        (0..comm.size()).map(|p| vec![me as u8, p as u8]).collect::<Vec<_>>();
                    let got = comm.exchange(frames);
                    for (from, frame) in got.iter().enumerate() {
                        assert_eq!(frame, &vec![from as u8, me as u8]);
                    }
                    me
                })
            })
            .collect();
        let mut done: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_collects_every_rank_frame_in_rank_order() {
        let mesh = local_mesh(4);
        let handles: Vec<_> = mesh
            .into_iter()
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let me = comm.rank() as u8;
                    // Two rounds back-to-back: FIFO channels keep rounds
                    // separated without explicit tags.
                    let r1 = comm.broadcast(vec![me, 1]);
                    let r2 = comm.broadcast(vec![me, 2]);
                    for (from, frame) in r1.iter().enumerate() {
                        assert_eq!(frame, &vec![from as u8, 1]);
                    }
                    for (from, frame) in r2.iter().enumerate() {
                        assert_eq!(frame, &vec![from as u8, 2]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
