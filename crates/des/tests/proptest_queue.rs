//! Property tests: both pending-event sets realize the same deterministic
//! total order — sorted by time, FIFO within a timestamp.

use dfsim_des::calendar::CalendarQueue;
use dfsim_des::queue::{EventQueue, PendingEvents};
use proptest::prelude::*;

/// A workload: a sequence of push(delay)/pop commands.
#[derive(Debug, Clone)]
enum Cmd {
    Push(u64),
    Pop,
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![3 => (0u64..10_000).prop_map(Cmd::Push), 2 => Just(Cmd::Pop)],
        1..400,
    )
}

fn run<Q: PendingEvents<u64>>(q: &mut Q, cmds: &[Cmd]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut id = 0u64;
    for c in cmds {
        match c {
            Cmd::Push(d) => {
                q.push(now + d, id);
                id += 1;
            }
            Cmd::Pop => {
                if let Some((t, e)) = q.pop() {
                    now = t;
                    out.push((t, e));
                }
            }
        }
    }
    while let Some((t, e)) = q.pop() {
        out.push((t, e));
    }
    out
}

proptest! {
    /// The heap pops a non-decreasing time sequence and every pushed event
    /// exactly once.
    #[test]
    fn heap_is_total_order(cmds in cmds()) {
        let mut q = EventQueue::new();
        let out = run(&mut q, &cmds);
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
        }
        let mut ids: Vec<u64> = out.iter().map(|&(_, e)| e).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), out.len(), "duplicate or lost events");
    }

    /// The calendar queue produces exactly the heap's order on any workload.
    #[test]
    fn calendar_matches_heap(cmds in cmds(), width in 1u64..512, nbuckets in 2usize..64) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new(width, nbuckets);
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
    }

    /// FIFO tie-break: two events at the same timestamp pop in push order.
    #[test]
    fn fifo_within_timestamp(n in 1usize..200, t in 0u64..1_000_000) {
        let mut q = EventQueue::new();
        for i in 0..n as u64 {
            q.push(t, i);
        }
        for i in 0..n as u64 {
            prop_assert_eq!(q.pop(), Some((t, i)));
        }
    }
}
