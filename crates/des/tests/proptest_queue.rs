//! Property tests: every pending-event set realizes the same deterministic
//! total order — sorted by time, FIFO within a timestamp — including the
//! self-tuning calendar queue, whose bucket geometry rebuilds mid-workload.
//!
//! Beyond uniform command streams, the mixes mirror what the simulator
//! actually produces: **bursty** same-timestamp fan-out (router arbitration
//! storms), **far-horizon** compute wake-ups millions of picoseconds ahead
//! of the packet traffic, and a **churn-derived** mix (dense ns-scale
//! network events punctuated by ms-scale job arrivals) — the pattern that
//! defeats a fixed-width calendar.

use dfsim_des::calendar::CalendarQueue;
use dfsim_des::queue::{CalendarTuning, EventQueue, PendingEvents};
use proptest::prelude::*;

/// A workload: a sequence of push(delay)/pop commands.
#[derive(Debug, Clone)]
enum Cmd {
    Push(u64),
    Pop,
}

fn cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![3 => (0u64..10_000).prop_map(Cmd::Push), 2 => Just(Cmd::Pop)],
        1..400,
    )
}

/// Bursty mix: long runs of pushes at the *same* delay (ties exercise the
/// FIFO tie-break across buckets), then pop bursts.
fn bursty_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            2 => (0u64..200, 1usize..40)
                .prop_map(|(d, n)| std::iter::repeat_n(Cmd::Push(d), n).collect::<Vec<_>>()),
            1 => (1usize..40).prop_map(|n| vec![Cmd::Pop; n]),
        ],
        1..40,
    )
    .prop_map(|chunks| chunks.into_iter().flatten().collect())
}

/// Far-horizon mix: mostly short delays with occasional pushes millions of
/// ps ahead (compute wake-ups), the sparse-jump stressor.
fn far_horizon_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0u64..40_000).prop_map(Cmd::Push),
            1 => (1_000_000u64..50_000_000).prop_map(Cmd::Push),
            4 => Just(Cmd::Pop),
        ],
        1..600,
    )
}

/// Churn-derived mix: ns-scale traffic plus ms-scale arrivals — a ~1e9
/// dynamic range in one pending set, as `run_scenario` produces.
fn churn_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    prop::collection::vec(
        prop_oneof![
            8 => (0u64..20_000).prop_map(Cmd::Push),
            1 => (100_000_000u64..2_000_000_000).prop_map(Cmd::Push),
            6 => Just(Cmd::Pop),
        ],
        1..600,
    )
}

fn run<Q: PendingEvents<u64>>(q: &mut Q, cmds: &[Cmd]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut id = 0u64;
    for c in cmds {
        match c {
            Cmd::Push(d) => {
                q.push(now + d, id);
                id += 1;
            }
            Cmd::Pop => {
                if let Some((t, e)) = q.pop() {
                    now = t;
                    out.push((t, e));
                }
            }
        }
    }
    while let Some((t, e)) = q.pop() {
        out.push((t, e));
    }
    out
}

proptest! {
    /// The heap pops a non-decreasing time sequence and every pushed event
    /// exactly once.
    #[test]
    fn heap_is_total_order(cmds in cmds()) {
        let mut q = EventQueue::new();
        let out = run(&mut q, &cmds);
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
        }
        let mut ids: Vec<u64> = out.iter().map(|&(_, e)| e).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), out.len(), "duplicate or lost events");
    }

    /// The fixed calendar queue produces exactly the heap's order on any
    /// workload and geometry.
    #[test]
    fn calendar_matches_heap(cmds in cmds(), width in 1u64..512, nbuckets in 2usize..64) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::new(width, nbuckets);
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
    }

    /// The self-tuning calendar matches the heap on uniform workloads.
    #[test]
    fn auto_calendar_matches_heap(cmds in cmds()) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::auto();
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
    }

    /// …and on bursty same-timestamp fan-out.
    #[test]
    fn auto_calendar_matches_heap_on_bursts(cmds in bursty_cmds()) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::auto();
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
    }

    /// …and on far-horizon compute wake-ups (sparse-jump stressor).
    #[test]
    fn auto_calendar_matches_heap_on_far_horizon(cmds in far_horizon_cmds()) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::auto();
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
    }

    /// …and on the churn-derived ns/ms mixed-scale stream, for every
    /// partial tuning (each knob pinned or auto independently).
    #[test]
    fn tuned_calendars_match_heap_on_churn_mix(
        cmds in churn_cmds(),
        width in prop_oneof![1 => Just(0u64), 3 => 1u64..100_000],
        buckets in prop_oneof![1 => Just(0usize), 3 => 2usize..256],
    ) {
        // 0 encodes "auto" for the knob (the stubbed proptest has no
        // Option strategy).
        let tuning = CalendarTuning {
            width: (width > 0).then_some(width),
            buckets: (buckets > 0).then_some(buckets),
        };
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::with_tuning(tuning);
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
    }

    /// FIFO tie-break: two events at the same timestamp pop in push order.
    #[test]
    fn fifo_within_timestamp(n in 1usize..200, t in 0u64..1_000_000) {
        let mut q = EventQueue::new();
        for i in 0..n as u64 {
            q.push(t, i);
        }
        for i in 0..n as u64 {
            prop_assert_eq!(q.pop(), Some((t, i)));
        }
    }

    /// Traffic counters and peak tracking agree across backends (stats are
    /// workload properties, not backend properties — geometry aside).
    #[test]
    fn stats_counters_agree_across_backends(cmds in cmds()) {
        let mut heap = EventQueue::new();
        let mut cal = CalendarQueue::auto();
        let a = run(&mut heap, &cmds);
        let b = run(&mut cal, &cmds);
        prop_assert_eq!(a, b);
        let (hs, cs) = (heap.stats(), cal.stats());
        prop_assert_eq!(hs.events_scheduled, cs.events_scheduled);
        prop_assert_eq!(hs.events_processed, cs.events_processed);
        prop_assert_eq!(hs.peak_pending, cs.peak_pending);
        prop_assert_eq!(hs.pending, 0);
        prop_assert_eq!(cs.pending, 0);
    }
}
