//! FFT3D — parallel FFT with row/column alltoalls (paper §IV, "Alltoall").
//!
//! Processes form a 2-D array; each iteration performs a ring alltoall along
//! the process row (transpose), a computation phase (the FFT itself), an
//! alltoall along the column, and another computation phase — producing the
//! bursty throughput profile of paper Fig 5 (valleys = compute, peaks =
//! alltoall).

use dfsim_mpi::{CommId, MpiOp};

use crate::grid::Grid;
use crate::loopprog::LoopProgram;
use crate::spec::{div_bytes, div_time, scale_split, AppInstance};

/// Paper-scale per-pair alltoall payload (= Table I peak ingress: the ring
/// keeps one message in flight).
pub const MSG_BYTES: u64 = 52_920;
/// Paper-scale iteration count (forward/backward FFT rounds).
pub const BASE_ITERS: u32 = 13;
/// Compute phase between alltoalls, ps (calibrated so Table I's 12.53 ms
/// execution time = 13 iterations of 2 alltoalls + 2 FFT compute phases).
pub const COMPUTE_PS: u64 = 350_000_000;

/// Build FFT3D for `size` ranks.
pub fn build(size: u32, scale: f64) -> AppInstance {
    let s = scale_split(BASE_ITERS, 2, scale);
    let bytes = div_bytes(MSG_BYTES, s.byte_div);
    let compute = div_time(COMPUTE_PS, s.byte_div);
    let grid = Grid::balanced(size, 2);
    let (rows, cols) = (grid.dims()[0], grid.dims()[1]);

    // Communicators: 1..=rows are row comms, rows+1..=rows+cols column comms.
    let mut comms: Vec<Vec<u32>> = Vec::with_capacity((rows + cols) as usize);
    for r in 0..rows {
        comms.push((0..cols).map(|c| grid.rank(&[r, c])).collect());
    }
    for c in 0..cols {
        comms.push((0..rows).map(|r| grid.rank(&[r, c])).collect());
    }

    let programs = (0..size)
        .map(|rank| {
            let coords = grid.coords(rank);
            let row_comm = CommId(1 + coords[0] as u16);
            let col_comm = CommId(1 + rows as u16 + coords[1] as u16);
            LoopProgram::boxed(s.iters, move |_i, buf| {
                buf.push_back(MpiOp::AllToAll { comm: row_comm, bytes });
                buf.push_back(MpiOp::Compute(compute));
                buf.push_back(MpiOp::AllToAll { comm: col_comm, bytes });
                buf.push_back(MpiOp::Compute(compute));
            })
        })
        .collect();
    AppInstance { programs, comms }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communicators_partition_rows_and_columns() {
        let inst = build(12, 1.0); // 4×3 grid
        let comms = &inst.comms;
        assert_eq!(comms.len(), 4 + 3);
        // Row comms have 3 members, column comms 4.
        for row in &comms[..4] {
            assert_eq!(row.len(), 3);
        }
        for col in &comms[4..] {
            assert_eq!(col.len(), 4);
        }
        // Every rank appears in exactly one row and one column.
        let mut seen = [0u32; 12];
        for c in comms {
            for &m in c {
                seen[m as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 2));
    }

    #[test]
    fn iteration_alternates_alltoall_and_compute() {
        let inst = build(12, 1000.0);
        let mut p = inst.programs.into_iter().next().unwrap();
        let ops: Vec<_> = std::iter::from_fn(|| p.next_op()).take(4).collect();
        assert!(matches!(ops[0], MpiOp::AllToAll { .. }));
        assert!(matches!(ops[1], MpiOp::Compute(_)));
        assert!(matches!(ops[2], MpiOp::AllToAll { .. }));
        assert!(matches!(ops[3], MpiOp::Compute(_)));
        // Row and column comms differ.
        let (MpiOp::AllToAll { comm: a, .. }, MpiOp::AllToAll { comm: b, .. }) = (ops[0], ops[2])
        else {
            unreachable!()
        };
        assert_ne!(a, b);
    }
}
