//! [`LoopProgram`]: the lazy per-iteration program driver all workloads use.
//!
//! A workload is `iters` iterations; a generator closure fills a small op
//! buffer for one iteration at a time, so multi-thousand-iteration programs
//! never materialize their full op list (the paper's workloads would need
//! tens of millions of ops otherwise).

use std::collections::VecDeque;

use dfsim_mpi::{MpiOp, RankProgram};

/// A rank program that replays `gen(iter, buf)` for `iters` iterations.
pub struct LoopProgram<F> {
    iters: u32,
    iter: u32,
    buf: VecDeque<MpiOp>,
    gen: F,
}

impl<F: FnMut(u32, &mut VecDeque<MpiOp>) + Send> LoopProgram<F> {
    /// Create a program of `iters` iterations.
    pub fn new(iters: u32, gen: F) -> Self {
        Self { iters, iter: 0, buf: VecDeque::new(), gen }
    }

    /// Boxed form (what the MPI layer consumes).
    pub fn boxed(iters: u32, gen: F) -> Box<dyn RankProgram>
    where
        F: 'static,
    {
        Box::new(Self::new(iters, gen))
    }
}

impl<F: FnMut(u32, &mut VecDeque<MpiOp>) + Send> RankProgram for LoopProgram<F> {
    fn next_op(&mut self) -> Option<MpiOp> {
        loop {
            if let Some(op) = self.buf.pop_front() {
                return Some(op);
            }
            if self.iter >= self.iters {
                return None;
            }
            let i = self.iter;
            self.iter += 1;
            (self.gen)(i, &mut self.buf);
            // Empty iterations (e.g. an idle rank) just advance.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_generator_per_iteration() {
        let mut p = LoopProgram::new(3, |i, buf| {
            buf.push_back(MpiOp::Compute(i as u64 + 1));
            buf.push_back(MpiOp::WaitAll);
        });
        let mut got = Vec::new();
        while let Some(op) = p.next_op() {
            got.push(op);
        }
        assert_eq!(
            got,
            vec![
                MpiOp::Compute(1),
                MpiOp::WaitAll,
                MpiOp::Compute(2),
                MpiOp::WaitAll,
                MpiOp::Compute(3),
                MpiOp::WaitAll,
            ]
        );
    }

    #[test]
    fn empty_iterations_are_skipped() {
        let mut p = LoopProgram::new(5, |i, buf| {
            if i == 2 {
                buf.push_back(MpiOp::WaitAll);
            }
        });
        assert_eq!(p.next_op(), Some(MpiOp::WaitAll));
        assert_eq!(p.next_op(), None);
    }

    #[test]
    fn zero_iterations_finish_immediately() {
        let mut p = LoopProgram::new(0, |_, buf| buf.push_back(MpiOp::WaitAll));
        assert_eq!(p.next_op(), None);
    }
}
