//! Job-arrival specifications and synthetic arrival generators.
//!
//! A churn scenario is a timed stream of job arrivals. This module provides
//! the two ways of producing one:
//!
//! * **explicit lists** parsed from a compact text form
//!   (`"UR:36@0.5ms,LU:16@1ms"` — see [`parse_arrival_list`]), used by the
//!   `dfsim scenario` subcommand,
//! * **synthetic generators** drawing Poisson-process arrivals from the
//!   deterministic [`SimRng`] ([`poisson_arrivals`]), used by the `churn`
//!   sweep — same seed, same arrival stream, on every backend and machine.

use dfsim_des::{SimRng, Time, MILLISECOND};

use crate::spec::AppKind;

/// One job arrival: which workload, how many ranks, when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalSpec {
    /// The workload.
    pub kind: AppKind,
    /// Ranks / nodes requested.
    pub size: u32,
    /// Arrival time, picoseconds.
    pub at: Time,
}

// The duration grammar (`0.5ms`, `20us`, bare milliseconds) lives in the
// DES time base now — experiment-spec files use it too — and is re-exported
// here where it historically lived.
pub use dfsim_des::time::parse_duration;

/// Parse one arrival `APP:SIZE@TIME` (e.g. `UR:36@0.5ms`).
pub fn parse_arrival(s: &str) -> Result<ArrivalSpec, String> {
    let s = s.trim();
    let (head, time) =
        s.split_once('@').ok_or_else(|| format!("arrival '{s}' must look like APP:SIZE@TIME"))?;
    let (app, size) = head
        .split_once(':')
        .ok_or_else(|| format!("arrival '{s}' must look like APP:SIZE@TIME"))?;
    let kind = AppKind::from_name(app.trim()).ok_or_else(|| {
        let names: Vec<&str> = AppKind::ALL.iter().map(|k| k.name()).collect();
        format!("unknown app '{}' (valid: {})", app.trim(), names.join(", "))
    })?;
    let size: u32 = size
        .trim()
        .parse()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("invalid job size '{}' in '{s}'", size.trim()))?;
    Ok(ArrivalSpec { kind, size, at: parse_duration(time)? })
}

/// Parse a comma-separated arrival list, e.g. `"UR:36@0,LU:16@0.5ms"`.
/// Arrivals are returned sorted by time (stable: ties keep list order).
pub fn parse_arrival_list(s: &str) -> Result<Vec<ArrivalSpec>, String> {
    let mut out = Vec::new();
    for part in s.split(',') {
        if part.trim().is_empty() {
            continue;
        }
        out.push(parse_arrival(part)?);
    }
    if out.is_empty() {
        return Err("empty arrival list".into());
    }
    out.sort_by_key(|a| a.at);
    Ok(out)
}

/// Generate `count` Poisson-process arrivals at `rate_per_ms` jobs per
/// simulated millisecond, cycling workload kinds and sizes chosen by the
/// deterministic RNG stream derived from `seed`.
///
/// Inter-arrival gaps are exponential via inverse-CDF on the uniform stream,
/// so the sequence depends only on `(seed, rate, kinds, sizes)` — never on
/// queue backend or host.
pub fn poisson_arrivals(
    seed: u64,
    rate_per_ms: f64,
    count: u32,
    kinds: &[AppKind],
    sizes: &[u32],
) -> Vec<ArrivalSpec> {
    assert!(rate_per_ms > 0.0, "arrival rate must be positive");
    assert!(!kinds.is_empty() && !sizes.is_empty(), "need at least one kind and size");
    let mut rng = SimRng::new(seed).derive("arrivals");
    let mut t: f64 = 0.0; // picoseconds
    let mean_gap = MILLISECOND as f64 / rate_per_ms;
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        // Exponential gap; 1 − u ∈ (0, 1] keeps ln() finite.
        let u = rng.unit();
        t += -((1.0 - u).ln()) * mean_gap;
        let kind = kinds[(i as usize) % kinds.len()];
        let size = sizes[rng.index(sizes.len())];
        out.push(ArrivalSpec { kind, size, at: t.round() as Time });
    }
    out
}

#[cfg(test)]
mod tests {
    use dfsim_des::{MICROSECOND, NANOSECOND, SECOND};

    use super::*;

    #[test]
    fn durations_parse_with_units() {
        assert_eq!(parse_duration("5ns").unwrap(), 5 * NANOSECOND);
        assert_eq!(parse_duration("2us").unwrap(), 2 * MICROSECOND);
        assert_eq!(parse_duration("0.5ms").unwrap(), MILLISECOND / 2);
        assert_eq!(parse_duration("1s").unwrap(), SECOND);
        assert_eq!(parse_duration("250ps").unwrap(), 250);
        // Bare numbers are milliseconds.
        assert_eq!(parse_duration("2").unwrap(), 2 * MILLISECOND);
        assert!(parse_duration("fast").is_err());
        assert!(parse_duration("-1ms").is_err());
    }

    #[test]
    fn arrival_specs_parse() {
        let a = parse_arrival("UR:36@0.5ms").unwrap();
        assert_eq!(a, ArrivalSpec { kind: AppKind::UR, size: 36, at: MILLISECOND / 2 });
        let list = parse_arrival_list("LU:16@1ms, UR:36@0.5ms,").unwrap();
        assert_eq!(list.len(), 2);
        // Sorted by arrival time.
        assert_eq!(list[0].kind, AppKind::UR);
        assert_eq!(list[1].kind, AppKind::LU);
    }

    #[test]
    fn arrival_errors_name_the_valid_apps() {
        let err = parse_arrival("NOPE:4@1ms").unwrap_err();
        assert!(err.contains("unknown app"), "{err}");
        assert!(err.contains("FFT3D") && err.contains("LULESH"), "{err}");
        assert!(parse_arrival("UR:0@1ms").is_err());
        assert!(parse_arrival("UR@1ms").is_err());
        assert!(parse_arrival_list("").is_err());
    }

    #[test]
    fn poisson_is_deterministic_and_ordered() {
        let kinds = [AppKind::UR, AppKind::LU];
        let a = poisson_arrivals(7, 10.0, 50, &kinds, &[8, 16]);
        let b = poisson_arrivals(7, 10.0, 50, &kinds, &[8, 16]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at), "non-monotone arrivals");
        assert!(a.iter().all(|x| x.size == 8 || x.size == 16));
        // Kinds cycle deterministically.
        assert_eq!(a[0].kind, AppKind::UR);
        assert_eq!(a[1].kind, AppKind::LU);
        // Different seeds give different streams.
        let c = poisson_arrivals(8, 10.0, 50, &kinds, &[8, 16]);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_rate_roughly_matches() {
        let a = poisson_arrivals(3, 2.0, 400, &[AppKind::UR], &[4]);
        let span_ms = a.last().unwrap().at as f64 / MILLISECOND as f64;
        let rate = 400.0 / span_ms;
        assert!((rate - 2.0).abs() < 0.5, "empirical rate {rate}");
    }
}
