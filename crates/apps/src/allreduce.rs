//! The Allreduce pair: CosmoFlow and DL (paper §IV, "Allreduce").
//!
//! Both model fully synchronous data-parallel distributed deep learning:
//! long compute (the training step) followed by a tree allreduce of the
//! gradients. The paper scales CosmoFlow's measured behaviour (28.15 MB
//! every 129 ms) down 25× to match the other apps' durations, and defines
//! DL as "similar message size but shorter communication interval, such
//! that its message injection rate is around 4.7× higher than CosmoFlow".

use dfsim_mpi::{CommId, MpiOp};

use crate::loopprog::LoopProgram;
use crate::spec::{div_bytes, div_time, scale_split, AppInstance};

/// Parameters of one allreduce workload at paper scale.
#[derive(Debug, Clone, Copy)]
pub struct AllreduceParams {
    /// Allreduce buffer bytes (28.15 MB / 25 for CosmoFlow).
    pub bytes: u64,
    /// Compute interval between allreduces, ps.
    pub interval_ps: u64,
    /// Training steps.
    pub rounds: u32,
    /// Minimum rounds preserved under scaling.
    pub min_rounds: u32,
}

/// CosmoFlow: 1.126 MB allreduce every 5.16 ms (the 25×-scaled trace).
pub const COSMOFLOW: AllreduceParams = AllreduceParams {
    bytes: 1_180_634, // 28.15 MB / 25
    interval_ps: 5_160_000_000,
    rounds: 2,
    min_rounds: 2,
};

/// DL: same buffer, 4.7× shorter interval, more rounds.
pub const DL: AllreduceParams = AllreduceParams {
    bytes: 1_205_862,
    interval_ps: 1_098_000_000, // 5.16 ms / 4.7
    rounds: 8,
    min_rounds: 4,
};

/// Build an allreduce app.
pub fn build_allreduce(size: u32, scale: f64, p: AllreduceParams) -> AppInstance {
    let s = scale_split(p.rounds, p.min_rounds, scale);
    let bytes = div_bytes(p.bytes, s.byte_div);
    let interval = div_time(p.interval_ps, s.byte_div);
    let programs = (0..size)
        .map(|_| {
            LoopProgram::boxed(s.iters, move |_i, buf| {
                buf.push_back(MpiOp::Compute(interval));
                buf.push_back(MpiOp::AllReduce { comm: CommId::WORLD, bytes });
            })
        })
        .collect();
    AppInstance { programs, comms: Vec::new() }
}

/// Build CosmoFlow.
pub fn build_cosmoflow(size: u32, scale: f64) -> AppInstance {
    build_allreduce(size, scale, COSMOFLOW)
}

/// Build DL.
pub fn build_dl(size: u32, scale: f64) -> AppInstance {
    build_allreduce(size, scale, DL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_alternate_compute_and_allreduce() {
        let inst = build_allreduce(4, 1.0, COSMOFLOW);
        let mut p = inst.programs.into_iter().next().unwrap();
        let mut ops = Vec::new();
        while let Some(op) = p.next_op() {
            ops.push(op);
        }
        assert_eq!(ops.len(), 2 * COSMOFLOW.rounds as usize);
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0], MpiOp::Compute(_)));
            assert!(matches!(pair[1], MpiOp::AllReduce { .. }));
        }
    }

    #[test]
    fn dl_injection_rate_is_4_7x_cosmoflow() {
        // Rate ∝ bytes / interval; buffers are near-equal, intervals differ.
        let cosmo = COSMOFLOW.bytes as f64 / COSMOFLOW.interval_ps as f64;
        let dl = DL.bytes as f64 / DL.interval_ps as f64;
        let ratio = dl / cosmo;
        assert!((ratio - 4.8).abs() < 0.15, "ratio = {ratio}");
    }

    #[test]
    fn scaling_shrinks_bytes_and_interval_together() {
        let inst = build_allreduce(2, 64.0, COSMOFLOW);
        let mut p = inst.programs.into_iter().next().unwrap();
        let Some(MpiOp::Compute(interval)) = p.next_op() else { panic!() };
        let Some(MpiOp::AllReduce { bytes, .. }) = p.next_op() else { panic!() };
        // rounds pinned at min_rounds = 2 → the full 64× residual lands on
        // bytes and time.
        assert_eq!(bytes, (COSMOFLOW.bytes as f64 / 64.0).round() as u64);
        assert_eq!(interval, (COSMOFLOW.interval_ps as f64 / 64.0).round() as u64);
    }
}
