//! Multi-dimensional process grids for the stencil/sweep workloads.

/// Factor `n` into `dims` near-balanced factors (largest first): the prime
/// factors of `n` are distributed greedily onto the smallest current
/// dimension. E.g. 528 → 3 dims = [11, 8, 6], 243 → 5 dims = [3,3,3,3,3].
pub fn factorize(n: u32, dims: usize) -> Vec<u32> {
    assert!(n > 0 && dims > 0);
    let mut primes = prime_factors(n);
    primes.sort_unstable_by(|a, b| b.cmp(a)); // largest first
    let mut out = vec![1u32; dims];
    for p in primes {
        let (i, _) = out.iter().enumerate().min_by_key(|&(_, &v)| v).unwrap();
        out[i] *= p;
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

fn prime_factors(mut n: u32) -> Vec<u32> {
    let mut fs = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            fs.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        fs.push(n);
    }
    fs
}

/// A row-major process grid.
#[derive(Debug, Clone)]
pub struct Grid {
    dims: Vec<u32>,
}

impl Grid {
    /// Grid with explicit dimensions.
    pub fn new(dims: Vec<u32>) -> Self {
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0));
        Self { dims }
    }

    /// Near-balanced grid of `n` ranks across `ndims` dimensions.
    pub fn balanced(n: u32, ndims: usize) -> Self {
        Self::new(factorize(n, ndims))
    }

    /// Dimension sizes.
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Total ranks.
    pub fn size(&self) -> u32 {
        self.dims.iter().product()
    }

    /// Coordinates of a rank (row-major; dim 0 is the slowest-varying).
    pub fn coords(&self, rank: u32) -> Vec<u32> {
        debug_assert!(rank < self.size());
        let mut rest = rank;
        let mut out = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            out[i] = rest % d;
            rest /= d;
        }
        out
    }

    /// Rank of coordinates.
    pub fn rank(&self, coords: &[u32]) -> u32 {
        debug_assert_eq!(coords.len(), self.dims.len());
        let mut r = 0;
        for (c, &d) in coords.iter().zip(self.dims.iter()) {
            debug_assert!(*c < d);
            r = r * d + c;
        }
        r
    }

    /// The neighbour of `rank` at `delta` (±1) along `dim`; `None` at a
    /// non-periodic boundary.
    pub fn neighbor(&self, rank: u32, dim: usize, delta: i32) -> Option<u32> {
        let mut c = self.coords(rank);
        let v = c[dim] as i64 + delta as i64;
        if v < 0 || v >= self.dims[dim] as i64 {
            return None;
        }
        c[dim] = v as u32;
        Some(self.rank(&c))
    }

    /// All face neighbours (±1 along each dimension, non-periodic).
    pub fn face_neighbors(&self, rank: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for dim in 0..self.dims.len() {
            for delta in [-1, 1] {
                if let Some(nb) = self.neighbor(rank, dim, delta) {
                    out.push(nb);
                }
            }
        }
        out
    }

    /// The offset-neighbour at `deltas` (one per dimension), `None` if any
    /// coordinate leaves the grid.
    pub fn offset_neighbor(&self, rank: u32, deltas: &[i32]) -> Option<u32> {
        debug_assert_eq!(deltas.len(), self.dims.len());
        let mut c = self.coords(rank);
        for (i, &d) in deltas.iter().enumerate() {
            let v = c[i] as i64 + d as i64;
            if v < 0 || v >= self.dims[i] as i64 {
                return None;
            }
            c[i] = v as u32;
        }
        Some(self.rank(&c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorize_known_cases() {
        assert_eq!(factorize(528, 3), vec![11, 8, 6]);
        assert_eq!(factorize(243, 5), vec![3, 3, 3, 3, 3]);
        assert_eq!(factorize(512, 3), vec![8, 8, 8]);
        assert_eq!(factorize(7, 2), vec![7, 1]);
        assert_eq!(factorize(1, 4), vec![1, 1, 1, 1]);
    }

    #[test]
    fn factorize_preserves_product() {
        for n in 1..600u32 {
            for d in 1..=5usize {
                let f = factorize(n, d);
                assert_eq!(f.iter().product::<u32>(), n, "n={n} d={d}");
                assert_eq!(f.len(), d);
            }
        }
    }

    #[test]
    fn coords_rank_round_trip() {
        let g = Grid::balanced(528, 3);
        for r in 0..g.size() {
            assert_eq!(g.rank(&g.coords(r)), r);
        }
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = Grid::new(vec![3, 3]);
        // Corner rank 0 = (0,0): only +1 neighbours.
        assert_eq!(g.neighbor(0, 0, -1), None);
        assert_eq!(g.neighbor(0, 1, -1), None);
        assert_eq!(g.neighbor(0, 0, 1), Some(3));
        assert_eq!(g.neighbor(0, 1, 1), Some(1));
        // Center rank 4 = (1,1): 4 neighbours.
        assert_eq!(g.face_neighbors(4), vec![1, 7, 3, 5]);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let g = Grid::balanced(360, 4);
        for r in 0..g.size() {
            for nb in g.face_neighbors(r) {
                assert!(g.face_neighbors(nb).contains(&r), "{r} <-> {nb}");
            }
        }
    }

    #[test]
    fn offset_neighbors_for_26_point_stencil() {
        let g = Grid::new(vec![3, 3, 3]);
        let center = g.rank(&[1, 1, 1]);
        let mut count = 0;
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    if (dx, dy, dz) == (0, 0, 0) {
                        continue;
                    }
                    if g.offset_neighbor(center, &[dx, dy, dz]).is_some() {
                        count += 1;
                    }
                }
            }
        }
        assert_eq!(count, 26);
        // A corner has only 7 offset neighbours.
        let corner = g.rank(&[0, 0, 0]);
        let mut c = 0;
        for dx in -1..=1i32 {
            for dy in -1..=1i32 {
                for dz in -1..=1i32 {
                    if (dx, dy, dz) != (0, 0, 0)
                        && g.offset_neighbor(corner, &[dx, dy, dz]).is_some()
                    {
                        c += 1;
                    }
                }
            }
        }
        assert_eq!(c, 7);
    }
}
