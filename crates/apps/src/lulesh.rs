//! LULESH — the hydrodynamics proxy app (paper §IV, "Hybrid").
//!
//! The communication pattern follows the characterization the paper cites
//! (Durango / automated pattern analysis [39], [40]): a 26-point 3-D
//! stencil (faces, edges and corners with geometrically shrinking message
//! sizes) followed by a sweep3d-style wavefront exchange, then compute.
//! LULESH requires a perfect process cube (512 ranks of the 528-node
//! partition; 16 nodes idle — paper §V).

use dfsim_mpi::MpiOp;

use crate::grid::Grid;
use crate::loopprog::LoopProgram;
use crate::spec::{div_bytes, div_time, scale_split, AppInstance};

/// Face message bytes (|Δ| = 1); 6 faces dominate the 1.95 MB peak ingress.
pub const FACE_BYTES: u64 = 327_680;
/// Edge message bytes (|Δ| = 2).
pub const EDGE_BYTES: u64 = 5_734;
/// Corner message bytes (|Δ| = 3).
pub const CORNER_BYTES: u64 = 448;
/// Sweep-phase message bytes (Table I second peak: 14.91 KB over 2).
pub const SWEEP_BYTES: u64 = 7_634;
/// Paper-scale iteration count.
pub const BASE_ITERS: u32 = 18;
/// Per-iteration compute, ps (calibrated: Table I exec 12.34 ms over 18
/// iterations, minus the ~280 µs network-limited exchange time).
pub const COMPUTE_PS: u64 = 400_000_000;

/// Build LULESH for `size` ranks (must be a perfect cube).
pub fn build(size: u32, scale: f64) -> AppInstance {
    let k = (size as f64).cbrt().round() as u32;
    assert_eq!(k * k * k, size, "LULESH needs a perfect process cube, got {size}");
    let s = scale_split(BASE_ITERS, 4, scale);
    let face = div_bytes(FACE_BYTES, s.byte_div);
    let edge = div_bytes(EDGE_BYTES, s.byte_div);
    let corner = div_bytes(CORNER_BYTES, s.byte_div);
    let sweep = div_bytes(SWEEP_BYTES, s.byte_div);
    let compute = div_time(COMPUTE_PS, s.byte_div);
    let grid = Grid::new(vec![k, k, k]);

    let programs = (0..size)
        .map(|rank| {
            // Precompute the 26-point neighbourhood with per-class sizes.
            let mut stencil: Vec<(u32, u64)> = Vec::with_capacity(26);
            for dx in -1..=1i32 {
                for dy in -1..=1i32 {
                    for dz in -1..=1i32 {
                        if (dx, dy, dz) == (0, 0, 0) {
                            continue;
                        }
                        if let Some(nb) = grid.offset_neighbor(rank, &[dx, dy, dz]) {
                            let class = (dx.abs() + dy.abs() + dz.abs()) as u32;
                            let bytes = match class {
                                1 => face,
                                2 => edge,
                                _ => corner,
                            };
                            stencil.push((nb, bytes));
                        }
                    }
                }
            }
            let sweep_up: Vec<u32> = (0..3).filter_map(|d| grid.neighbor(rank, d, -1)).collect();
            let sweep_down: Vec<u32> = (0..3).filter_map(|d| grid.neighbor(rank, d, 1)).collect();
            LoopProgram::boxed(s.iters, move |i, buf| {
                // Phase 1: 26-point halo exchange.
                let tag = (i as u64) << 2;
                for &(nb, _) in &stencil {
                    buf.push_back(MpiOp::Irecv { src: Some(nb), tag });
                }
                for &(nb, bytes) in &stencil {
                    buf.push_back(MpiOp::Isend { dst: nb, bytes, tag });
                }
                buf.push_back(MpiOp::WaitAll);
                // Phase 2: sweep3d wavefront.
                let tag = tag | 1;
                for &src in &sweep_up {
                    buf.push_back(MpiOp::Recv { src: Some(src), tag });
                }
                for &dst in &sweep_down {
                    buf.push_back(MpiOp::Isend { dst, bytes: sweep, tag });
                }
                buf.push_back(MpiOp::WaitAll);
                // Phase 3: hydrodynamics compute.
                buf.push_back(MpiOp::Compute(compute));
            })
        })
        .collect();
    AppInstance { programs, comms: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_rank_peak_ingress_matches_table1() {
        // 6 faces + 12 edges + 8 corners at paper scale ≈ 1.95 MB.
        let total = 6 * FACE_BYTES + 12 * EDGE_BYTES + 8 * CORNER_BYTES;
        let target = 1.95 * 1024.0 * 1024.0;
        assert!((total as f64 - target).abs() / target < 0.01, "got {total}");
        // Sweep peak: 2 × SWEEP_BYTES ≈ 14.91 KB.
        let sweep = 2 * SWEEP_BYTES;
        assert!((sweep as f64 - 14.91 * 1024.0).abs() / (14.91 * 1024.0) < 0.01);
    }

    #[test]
    fn center_rank_exchanges_with_26_neighbors() {
        let inst = build(27, 1000.0);
        let mut programs = inst.programs;
        let p = &mut programs[13]; // (1,1,1)
        let mut sends = 0;
        loop {
            match p.next_op().unwrap() {
                MpiOp::Isend { .. } => sends += 1,
                MpiOp::WaitAll => break,
                _ => {}
            }
        }
        assert_eq!(sends, 26);
    }

    #[test]
    fn sweep_phase_follows_stencil_phase() {
        let inst = build(8, 1000.0);
        let mut p = inst.programs.into_iter().next().unwrap();
        let mut ops = Vec::new();
        for _ in 0..64 {
            match p.next_op() {
                Some(op) => ops.push(op),
                None => break,
            }
        }
        // Expect two WaitAlls then a Compute within one iteration.
        let waits: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter_map(|(i, o)| matches!(o, MpiOp::WaitAll).then_some(i))
            .collect();
        assert!(waits.len() >= 2);
        assert!(matches!(ops[waits[1] + 1], MpiOp::Compute(_)));
    }

    #[test]
    #[should_panic(expected = "perfect process cube")]
    fn rejects_non_cube_sizes() {
        let _ = build(100, 1.0);
    }
}
