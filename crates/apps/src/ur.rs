//! UR — Uniform Random background traffic (paper §IV, "Random").
//!
//! Every process sends a fixed-size message to a pseudo-random target each
//! iteration. To keep the pattern balanced and deadlock-free without global
//! matching metadata, iteration `i` uses a random cyclic shift `s_i`: rank
//! `r` sends to `r + s_i` and receives from `r − s_i` (mod n). Destinations
//! remain uniformly distributed over the whole machine — the property the
//! paper uses UR for ("a system under a balanced network load").

use std::sync::Arc;

use dfsim_des::SimRng;
use dfsim_mpi::MpiOp;

use crate::loopprog::LoopProgram;
use crate::spec::{div_bytes, scale_split, AppInstance};

/// Paper-scale per-message size (= Table I peak ingress, one message).
pub const MSG_BYTES: u64 = 3_072;
/// Paper-scale iteration count on 528 nodes (≈ 11.8 GB total).
pub const BASE_ITERS: u32 = 7_292;
/// Per-iteration compute, ps (calibrated: Table I's 13.31 ms / 7,292
/// iterations ≈ 1.8 µs per iteration, roughly half spent communicating).
pub const COMPUTE_PS: u64 = 900_000;

/// Build UR for `size` ranks.
pub fn build(size: u32, scale: f64, seed: u64) -> AppInstance {
    let s = scale_split(BASE_ITERS, 8, scale);
    let bytes = div_bytes(MSG_BYTES, s.byte_div);
    let compute = crate::spec::div_time(COMPUTE_PS, s.byte_div);
    // One shared shift schedule, identical on every rank.
    let mut rng = SimRng::new(seed ^ 0x5552_4e44); // "URND"
    let shifts: Arc<Vec<u32>> = Arc::new(
        (0..s.iters)
            .map(|_| if size > 1 { rng.below(size as u64 - 1) as u32 + 1 } else { 0 })
            .collect(),
    );
    let programs = (0..size)
        .map(|rank| {
            let shifts = Arc::clone(&shifts);
            LoopProgram::boxed(s.iters, move |i, buf| {
                let shift = shifts[i as usize];
                if shift == 0 {
                    return; // single-rank degenerate case
                }
                let n = size;
                let dst = (rank + shift) % n;
                let src = (rank + n - shift) % n;
                buf.push_back(MpiOp::Irecv { src: Some(src), tag: i as u64 });
                buf.push_back(MpiOp::Isend { dst, bytes, tag: i as u64 });
                buf.push_back(MpiOp::WaitAll);
                buf.push_back(MpiOp::Compute(compute));
            })
        })
        .collect();
    AppInstance { programs, comms: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sends_match_recvs_within_iteration() {
        let inst = build(8, 1000.0, 3);
        // Collect the first iteration's (src, dst) pairs from all ranks.
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for (rank, mut p) in inst.programs.into_iter().enumerate() {
            let r = p.next_op().unwrap();
            let s = p.next_op().unwrap();
            match (r, s) {
                (MpiOp::Irecv { src: Some(src), .. }, MpiOp::Isend { dst, .. }) => {
                    recvs.push((src, rank as u32));
                    sends.push((rank as u32, dst));
                }
                other => panic!("unexpected ops {other:?}"),
            }
        }
        sends.sort_unstable();
        recvs.sort_unstable();
        assert_eq!(sends, recvs, "every send has a matching recv");
        // Nobody sends to itself.
        assert!(sends.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn scale_reduces_iterations_not_bytes() {
        let inst = build(4, 64.0, 1);
        let mut p = inst.programs.into_iter().next().unwrap();
        let mut count = 0;
        let mut bytes = None;
        while let Some(op) = p.next_op() {
            if let MpiOp::Isend { bytes: b, .. } = op {
                count += 1;
                bytes = Some(b);
            }
        }
        assert_eq!(count, (BASE_ITERS as f64 / 64.0).round() as u32);
        assert_eq!(bytes, Some(MSG_BYTES), "message size preserved at this scale");
    }

    #[test]
    fn single_rank_job_is_silent() {
        let inst = build(1, 1000.0, 9);
        let mut p = inst.programs.into_iter().next().unwrap();
        assert_eq!(p.next_op(), None);
    }
}
