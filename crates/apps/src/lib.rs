//! The nine workloads of the SC22 interference study (paper §IV, Table I).
//!
//! | Pattern   | App        | Communication behaviour                         |
//! |-----------|------------|--------------------------------------------------|
//! | Random    | UR         | each process sends to pseudo-random targets      |
//! | Sweep     | LU         | 2-D corner-to-corner wavefront                   |
//! | Alltoall  | FFT3D      | ring alltoalls along process rows and columns    |
//! | Stencil   | Halo3D     | 3-D halo exchange, 6 neighbours                  |
//! | Stencil   | LQCD       | 4-D halo exchange, 8 neighbours                  |
//! | Stencil   | Stencil5D  | 5-D halo exchange, up to 10 neighbours           |
//! | Allreduce | CosmoFlow  | periodic tree allreduce, long compute intervals  |
//! | Allreduce | DL         | same message size, ~4.7× higher injection rate   |
//! | Hybrid    | LULESH     | 26-point 3-D stencil + sweep3d, 512 ranks        |
//!
//! Every app is calibrated against Table I's paper-scale characteristics
//! (total message volume, execution time, injection rate, peak ingress
//! volume) and honours a `scale` divisor applied to message bytes and
//! compute times — which preserves injection *rates* and peak-ingress
//! *ordering* while shrinking simulated volume (`DESIGN.md` §5).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod allreduce;
pub mod arrivals;
pub mod fft3d;
pub mod grid;
pub mod loopprog;
pub mod lu;
pub mod lulesh;
pub mod spec;
pub mod stencil;
pub mod ur;

pub use arrivals::{parse_arrival_list, poisson_arrivals, ArrivalSpec};
pub use loopprog::LoopProgram;
pub use spec::{AppInstance, AppKind, PaperRow};
