//! LU — the NAS LU Gauss–Seidel solver's 2-D wavefront sweep (paper §IV).
//!
//! Processes form a 2-D grid; each sweep starts at corner (0, 0) and
//! propagates diagonally: every rank blocks on its up/left neighbours,
//! computes, then sends to its down/right neighbours. Peak ingress counts
//! two messages (both downstream partners).

use dfsim_mpi::MpiOp;

use crate::grid::Grid;
use crate::loopprog::LoopProgram;
use crate::spec::{div_bytes, div_time, scale_split, AppInstance};

/// Paper-scale per-message size (peak ingress 30 KB / 2 messages).
pub const MSG_BYTES: u64 = 15_360;
/// Paper-scale sweep count (≈ 13.7 GB total on 528 ranks).
pub const BASE_ITERS: u32 = 860;
/// Per-rank compute between receive and send, ps (calibrated: Table I's
/// 13.71 ms = (grid diagonal + sweeps) pipeline stages of compute + 2 sends).
pub const COMPUTE_PS: u64 = 8_000_000;

/// Build LU for `size` ranks.
pub fn build(size: u32, scale: f64) -> AppInstance {
    // min 16 sweeps: the (nx+ny)-stage pipeline fill is a fixed cost, so
    // keeping more sweeps preserves the paper's steady-state behaviour.
    let s = scale_split(BASE_ITERS, 16, scale);
    let bytes = div_bytes(MSG_BYTES, s.byte_div);
    let compute = div_time(COMPUTE_PS, s.byte_div);
    let grid = Grid::balanced(size, 2);
    let programs = (0..size)
        .map(|rank| {
            let up_x = grid.neighbor(rank, 0, -1);
            let up_y = grid.neighbor(rank, 1, -1);
            let down_x = grid.neighbor(rank, 0, 1);
            let down_y = grid.neighbor(rank, 1, 1);
            LoopProgram::boxed(s.iters, move |i, buf| {
                let tag = i as u64;
                // Wavefront dependency: block on upstream first.
                if let Some(src) = up_x {
                    buf.push_back(MpiOp::Recv { src: Some(src), tag });
                }
                if let Some(src) = up_y {
                    buf.push_back(MpiOp::Recv { src: Some(src), tag });
                }
                buf.push_back(MpiOp::Compute(compute));
                if let Some(dst) = down_x {
                    buf.push_back(MpiOp::Isend { dst, bytes, tag });
                }
                if let Some(dst) = down_y {
                    buf.push_back(MpiOp::Isend { dst, bytes, tag });
                }
                buf.push_back(MpiOp::WaitAll);
            })
        })
        .collect();
    AppInstance { programs, comms: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_mpi::RankProgram;

    #[test]
    fn corner_ranks_have_asymmetric_ops() {
        let inst = build(16, 100.0 /* 4×4 grid */);
        let mut programs = inst.programs;
        // Rank 0 = (0,0): no recvs, two sends.
        let ops = drain_one_iter(&mut programs[0]);
        assert_eq!(count_recvs(&ops), 0);
        assert_eq!(count_sends(&ops), 2);
        // Rank 15 = (3,3): two recvs, no sends.
        let ops = drain_one_iter(&mut programs[15]);
        assert_eq!(count_recvs(&ops), 2);
        assert_eq!(count_sends(&ops), 0);
        // Rank 5 = (1,1): two of each.
        let ops = drain_one_iter(&mut programs[5]);
        assert_eq!(count_recvs(&ops), 2);
        assert_eq!(count_sends(&ops), 2);
    }

    fn drain_one_iter(p: &mut Box<dyn RankProgram>) -> Vec<MpiOp> {
        let mut out = Vec::new();
        loop {
            let op = p.next_op().unwrap();
            let done = op == MpiOp::WaitAll;
            out.push(op);
            if done {
                return out;
            }
        }
    }

    fn count_recvs(ops: &[MpiOp]) -> usize {
        ops.iter().filter(|o| matches!(o, MpiOp::Recv { .. })).count()
    }

    fn count_sends(ops: &[MpiOp]) -> usize {
        ops.iter().filter(|o| matches!(o, MpiOp::Isend { .. })).count()
    }

    #[test]
    fn recvs_precede_sends_for_wavefront_order() {
        let inst = build(9, 100.0);
        let mut programs = inst.programs;
        let ops = drain_one_iter(&mut programs[4]); // center of 3×3
        let first_send = ops.iter().position(|o| matches!(o, MpiOp::Isend { .. })).unwrap();
        let last_recv = ops.iter().rposition(|o| matches!(o, MpiOp::Recv { .. })).unwrap();
        assert!(last_recv < first_send);
    }
}
