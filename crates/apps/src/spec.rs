//! Application catalogue: the nine workloads, their paper-scale
//! characteristics (Table I) and the common scaling machinery.

use dfsim_mpi::RankProgram;

/// A built application instance ready for `MpiSim::add_app`.
pub struct AppInstance {
    /// One program per world rank.
    pub programs: Vec<Box<dyn RankProgram>>,
    /// Extra communicators (world is implicit).
    pub comms: Vec<Vec<u32>>,
}

/// Paper-scale characterization of an app (Table I), used by the Table I
/// harness to print paper-vs-measured rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Communication pattern label.
    pub pattern: &'static str,
    /// Total message volume, MB.
    pub total_msg_mb: f64,
    /// Execution time, ms.
    pub exec_ms: f64,
    /// Message injection rate, GB/s (system-wide).
    pub inj_rate_gbs: f64,
    /// Peak ingress volume (human-readable, as printed in Table I).
    pub peak_ingress: &'static str,
    /// Peak ingress volume in bytes (for ordering checks).
    pub peak_ingress_bytes: u64,
}

/// The nine workloads (paper §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Uniform Random background traffic.
    UR,
    /// NAS LU Gauss–Seidel 2-D wavefront sweep.
    LU,
    /// 2-D-decomposed FFT with row/column alltoalls.
    FFT3D,
    /// 3-D halo exchange (6 neighbours).
    Halo3D,
    /// Lattice QCD 4-D halo exchange (8 neighbours).
    LQCD,
    /// Synthetic 5-D halo exchange (up to 10 neighbours).
    Stencil5D,
    /// Data-parallel deep-learning cosmology app (periodic allreduce).
    CosmoFlow,
    /// Heavier allreduce app (~4.7× CosmoFlow's injection rate).
    DL,
    /// 26-point stencil + sweep hybrid proxy app (512 ranks).
    LULESH,
}

impl AppKind {
    /// All nine workloads in Table I order.
    pub const ALL: [AppKind; 9] = [
        AppKind::UR,
        AppKind::LU,
        AppKind::FFT3D,
        AppKind::Halo3D,
        AppKind::LQCD,
        AppKind::Stencil5D,
        AppKind::CosmoFlow,
        AppKind::DL,
        AppKind::LULESH,
    ];

    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            AppKind::UR => "UR",
            AppKind::LU => "LU",
            AppKind::FFT3D => "FFT3D",
            AppKind::Halo3D => "Halo3D",
            AppKind::LQCD => "LQCD",
            AppKind::Stencil5D => "Stencil5D",
            AppKind::CosmoFlow => "CosmoFlow",
            AppKind::DL => "DL",
            AppKind::LULESH => "LULESH",
        }
    }

    /// Parse a display name.
    pub fn from_name(s: &str) -> Option<AppKind> {
        Self::ALL.iter().copied().find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Table I row (paper-scale characteristics on 528 nodes; LULESH 512).
    pub fn paper_row(&self) -> PaperRow {
        match self {
            AppKind::UR => PaperRow {
                pattern: "Random",
                total_msg_mb: 11_829.48,
                exec_ms: 13.31,
                inj_rate_gbs: 888.48,
                peak_ingress: "3.07KB",
                peak_ingress_bytes: 3_072,
            },
            AppKind::LU => PaperRow {
                pattern: "Sweep",
                total_msg_mb: 13_713.22,
                exec_ms: 13.71,
                inj_rate_gbs: 999.88,
                peak_ingress: "30.0KB",
                peak_ingress_bytes: 30_720,
            },
            AppKind::FFT3D => PaperRow {
                pattern: "Alltoall",
                total_msg_mb: 15_781.09,
                exec_ms: 12.53,
                inj_rate_gbs: 1_259.35,
                peak_ingress: "51.68KB",
                peak_ingress_bytes: 52_920,
            },
            AppKind::Halo3D => PaperRow {
                pattern: "Stencil",
                total_msg_mb: 47_769.10,
                exec_ms: 10.85,
                inj_rate_gbs: 4_403.81,
                peak_ingress: "1.15MB",
                peak_ingress_bytes: 1_205_862,
            },
            AppKind::LQCD => PaperRow {
                pattern: "Stencil",
                total_msg_mb: 11_924.31,
                exec_ms: 13.79,
                inj_rate_gbs: 864.70,
                peak_ingress: "4.60MB",
                peak_ingress_bytes: 4_823_449,
            },
            AppKind::Stencil5D => PaperRow {
                pattern: "Stencil",
                total_msg_mb: 9_833.95,
                exec_ms: 13.70,
                inj_rate_gbs: 717.87,
                peak_ingress: "14.0MB",
                peak_ingress_bytes: 14_680_064,
            },
            AppKind::CosmoFlow => PaperRow {
                pattern: "Allreduce",
                total_msg_mb: 2_373.84,
                exec_ms: 13.65,
                inj_rate_gbs: 173.86,
                peak_ingress: "2.25MB",
                peak_ingress_bytes: 2_359_296,
            },
            AppKind::DL => PaperRow {
                pattern: "Allreduce",
                total_msg_mb: 9_714.44,
                exec_ms: 11.86,
                inj_rate_gbs: 819.12,
                peak_ingress: "2.30MB",
                peak_ingress_bytes: 2_411_724,
            },
            AppKind::LULESH => PaperRow {
                pattern: "Stencil+Sweep",
                total_msg_mb: 17_900.12,
                exec_ms: 12.34,
                inj_rate_gbs: 1_450.78,
                peak_ingress: "1.95MB",
                peak_ingress_bytes: 2_044_723,
            },
        }
    }

    /// Job size this app wants given `available` nodes: LULESH insists on a
    /// perfect process cube (paper §V: 512 of 528, 16 idle); everything else
    /// uses all available nodes.
    pub fn preferred_size(&self, available: u32) -> u32 {
        match self {
            AppKind::LULESH => {
                let mut k = 1;
                while (k + 1) * (k + 1) * (k + 1) <= available {
                    k += 1;
                }
                k * k * k
            }
            _ => available,
        }
    }

    /// Build the per-rank programs (and sub-communicators) for a job of
    /// `size` ranks at scale divisor `scale`, seeded by `seed`.
    pub fn build(&self, size: u32, scale: f64, seed: u64) -> AppInstance {
        assert!(size > 0, "empty job");
        let scale = scale.max(1.0);
        match self {
            AppKind::UR => crate::ur::build(size, scale, seed),
            AppKind::LU => crate::lu::build(size, scale),
            AppKind::FFT3D => crate::fft3d::build(size, scale),
            AppKind::Halo3D => crate::stencil::build_halo3d(size, scale),
            AppKind::LQCD => crate::stencil::build_lqcd(size, scale),
            AppKind::Stencil5D => crate::stencil::build_stencil5d(size, scale),
            AppKind::CosmoFlow => crate::allreduce::build_cosmoflow(size, scale),
            AppKind::DL => crate::allreduce::build_dl(size, scale),
            AppKind::LULESH => crate::lulesh::build(size, scale),
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---- scaling machinery ------------------------------------------------------

/// How a `scale` divisor splits between fewer iterations and smaller
/// messages: iterations shrink first (down to `min_iters`, preserving the
/// pattern), the residual factor shrinks bytes and compute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Scaled {
    /// Scaled iteration count.
    pub iters: u32,
    /// Residual divisor applied to bytes and compute times.
    pub byte_div: f64,
}

pub(crate) fn scale_split(base_iters: u32, min_iters: u32, scale: f64) -> Scaled {
    debug_assert!(min_iters >= 1 && base_iters >= min_iters);
    let max_iter_factor = base_iters as f64 / min_iters as f64;
    let iter_factor = scale.clamp(1.0, max_iter_factor);
    let iters = ((base_iters as f64 / iter_factor).round() as u32).max(min_iters);
    let byte_div = (scale / iter_factor).max(1.0);
    Scaled { iters, byte_div }
}

/// Divide a byte quantity, keeping at least one byte.
pub(crate) fn div_bytes(bytes: u64, div: f64) -> u64 {
    ((bytes as f64 / div).round() as u64).max(1)
}

/// Divide a time quantity (picoseconds).
pub(crate) fn div_time(ps: u64, div: f64) -> u64 {
    (ps as f64 / div).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_split_prefers_iterations() {
        // Plenty of iterations: the whole factor comes out of them.
        let s = scale_split(7200, 8, 64.0);
        assert_eq!(s.iters, 113);
        assert!((s.byte_div - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scale_split_spills_into_bytes() {
        // Few iterations: residual goes to bytes.
        let s = scale_split(8, 2, 64.0);
        assert_eq!(s.iters, 2);
        assert!((s.byte_div - 16.0).abs() < 1e-9);
    }

    #[test]
    fn scale_one_is_identity() {
        let s = scale_split(100, 4, 1.0);
        assert_eq!(s.iters, 100);
        assert_eq!(s.byte_div, 1.0);
    }

    #[test]
    fn peak_ingress_ordering_matches_paper() {
        // The analysis in §V depends on this ordering.
        let b = |k: AppKind| k.paper_row().peak_ingress_bytes;
        assert!(b(AppKind::UR) < b(AppKind::LU));
        assert!(b(AppKind::LU) < b(AppKind::FFT3D));
        assert!(b(AppKind::FFT3D) < b(AppKind::Halo3D));
        assert!(b(AppKind::Halo3D) < b(AppKind::LULESH));
        assert!(b(AppKind::LULESH) < b(AppKind::CosmoFlow));
        assert!(b(AppKind::CosmoFlow) < b(AppKind::DL));
        assert!(b(AppKind::DL) < b(AppKind::LQCD));
        assert!(b(AppKind::LQCD) < b(AppKind::Stencil5D));
    }

    #[test]
    fn injection_rate_extremes_match_paper() {
        let r = |k: AppKind| k.paper_row().inj_rate_gbs;
        // Halo3D is the highest-injection-rate app, CosmoFlow the lowest.
        for k in AppKind::ALL {
            assert!(r(k) <= r(AppKind::Halo3D));
            assert!(r(k) >= r(AppKind::CosmoFlow));
        }
        // DL ≈ 4.7× CosmoFlow (paper §IV).
        let ratio = r(AppKind::DL) / r(AppKind::CosmoFlow);
        assert!((ratio - 4.7).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn lulesh_insists_on_a_cube() {
        assert_eq!(AppKind::LULESH.preferred_size(528), 512);
        assert_eq!(AppKind::LULESH.preferred_size(512), 512);
        assert_eq!(AppKind::LULESH.preferred_size(511), 343);
        assert_eq!(AppKind::UR.preferred_size(528), 528);
    }

    #[test]
    fn names_round_trip() {
        for k in AppKind::ALL {
            assert_eq!(AppKind::from_name(k.name()), Some(k));
        }
        assert_eq!(AppKind::from_name("cosmoflow"), Some(AppKind::CosmoFlow));
        assert_eq!(AppKind::from_name("nope"), None);
    }

    #[test]
    fn every_app_builds_small_instances() {
        for k in AppKind::ALL {
            let size = k.preferred_size(36);
            let inst = k.build(size, 256.0, 7);
            assert_eq!(inst.programs.len(), size as usize, "{k}");
        }
    }
}
