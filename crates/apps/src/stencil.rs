//! The stencil family: Halo3D (3-D, 6 neighbours), LQCD (4-D, 8 neighbours)
//! and Stencil5D (5-D, up to 10 neighbours) — paper §IV, "Stencil".
//!
//! Each iteration posts receives from every face neighbour, sends the halo
//! to each of them, waits for the exchange, and computes. Grids are
//! non-periodic, so edge/corner processes have fewer neighbours — the
//! source of Stencil5D's intra-app variance the paper remarks on (§V-C).

use dfsim_mpi::MpiOp;

use crate::grid::Grid;
use crate::loopprog::LoopProgram;
use crate::spec::{div_bytes, div_time, scale_split, AppInstance};

/// Parameters of one stencil workload at paper scale.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// Grid dimensionality.
    pub ndims: usize,
    /// Per-neighbour message bytes.
    pub msg_bytes: u64,
    /// Iterations.
    pub base_iters: u32,
    /// Minimum iterations preserved under scaling.
    pub min_iters: u32,
    /// Per-iteration compute, ps.
    pub compute_ps: u64,
}

/// Halo3D: highest injection rate of all apps (Table I: 4.4 TB/s).
pub const HALO3D: StencilParams = StencilParams {
    ndims: 3,
    msg_bytes: 200_977, // peak ingress 1.15 MB over 6 neighbours
    base_iters: 79,
    min_iters: 8,
    compute_ps: 30_000_000, // 30 µs: nearly continuous communication
};

/// LQCD: 4-D, large peak ingress (4.6 MB over 8 neighbours).
pub const LQCD: StencilParams = StencilParams {
    ndims: 4,
    msg_bytes: 602_931,
    base_iters: 5,
    min_iters: 2,
    compute_ps: 2_300_000_000, // 2.3 ms (Table I: 13.79 ms over 5 iterations)
};

/// Stencil5D: the largest peak ingress of the study (14 MB over 10
/// neighbours).
pub const STENCIL5D: StencilParams = StencilParams {
    ndims: 5,
    msg_bytes: 1_468_006,
    base_iters: 2,
    min_iters: 1,
    compute_ps: 5_100_000_000, // 5.1 ms (Table I: 13.70 ms over 2 iterations)
};

/// Build a stencil app from parameters.
pub fn build_stencil(size: u32, scale: f64, p: StencilParams) -> AppInstance {
    let s = scale_split(p.base_iters, p.min_iters, scale);
    let bytes = div_bytes(p.msg_bytes, s.byte_div);
    let compute = div_time(p.compute_ps, s.byte_div);
    let grid = Grid::balanced(size, p.ndims);
    let programs = (0..size)
        .map(|rank| {
            let neighbors = grid.face_neighbors(rank);
            LoopProgram::boxed(s.iters, move |i, buf| {
                let tag = i as u64;
                for &nb in &neighbors {
                    buf.push_back(MpiOp::Irecv { src: Some(nb), tag });
                }
                for &nb in &neighbors {
                    buf.push_back(MpiOp::Isend { dst: nb, bytes, tag });
                }
                buf.push_back(MpiOp::WaitAll);
                buf.push_back(MpiOp::Compute(compute));
            })
        })
        .collect();
    AppInstance { programs, comms: Vec::new() }
}

/// Build Halo3D.
pub fn build_halo3d(size: u32, scale: f64) -> AppInstance {
    build_stencil(size, scale, HALO3D)
}

/// Build LQCD.
pub fn build_lqcd(size: u32, scale: f64) -> AppInstance {
    build_stencil(size, scale, LQCD)
}

/// Build Stencil5D.
pub fn build_stencil5d(size: u32, scale: f64) -> AppInstance {
    build_stencil(size, scale, STENCIL5D)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_mpi::RankProgram;

    fn first_iter_sends(p: &mut Box<dyn RankProgram>) -> Vec<(u32, u64)> {
        let mut out = Vec::new();
        loop {
            match p.next_op().unwrap() {
                MpiOp::Isend { dst, bytes, .. } => out.push((dst, bytes)),
                MpiOp::WaitAll => return out,
                _ => {}
            }
        }
    }

    #[test]
    fn halo3d_interior_rank_has_six_neighbors() {
        // 27 ranks → 3×3×3; rank 13 is the center.
        let inst = build_stencil(27, 1000.0, HALO3D);
        let mut programs = inst.programs;
        let sends = first_iter_sends(&mut programs[13]);
        assert_eq!(sends.len(), 6);
        // Corner rank 0 has 3.
        let sends = first_iter_sends(&mut programs[0]);
        assert_eq!(sends.len(), 3);
    }

    #[test]
    fn lqcd_interior_rank_has_eight_neighbors() {
        // 81 ranks → 3×3×3×3; center = (1,1,1,1) = 40.
        let inst = build_stencil(81, 1000.0, LQCD);
        let mut programs = inst.programs;
        let sends = first_iter_sends(&mut programs[40]);
        assert_eq!(sends.len(), 8);
    }

    #[test]
    fn stencil5d_interior_rank_has_ten_neighbors() {
        // 243 ranks → 3^5 (the paper's mixed-workload size); center = 121.
        let inst = build_stencil(243, 1000.0, STENCIL5D);
        let mut programs = inst.programs;
        let sends = first_iter_sends(&mut programs[121]);
        assert_eq!(sends.len(), 10);
    }

    #[test]
    fn peak_ingress_scales_with_neighbor_count() {
        // The interior-rank burst (neighbours × bytes) reproduces Table I's
        // peak-ingress ordering within the stencil family at any scale.
        let halo = 6 * HALO3D.msg_bytes;
        let lqcd = 8 * LQCD.msg_bytes;
        let st5d = 10 * STENCIL5D.msg_bytes;
        assert!(halo < lqcd && lqcd < st5d);
        // And matches the Table I values within 1%.
        assert!((halo as f64 - 1.15 * 1024.0 * 1024.0).abs() / (1.15 * 1024.0 * 1024.0) < 0.01);
        assert!((lqcd as f64 - 4.6 * 1024.0 * 1024.0).abs() / (4.6 * 1024.0 * 1024.0) < 0.01);
        assert!((st5d as f64 - 14.0 * 1024.0 * 1024.0).abs() / (14.0 * 1024.0 * 1024.0) < 0.01);
    }

    #[test]
    fn iterations_end_with_exchange_then_compute() {
        let inst = build_stencil(8, 1000.0, HALO3D);
        let mut p = inst.programs.into_iter().next().unwrap();
        let mut ops = Vec::new();
        while let Some(op) = p.next_op() {
            ops.push(op);
            if ops.len() > 16 {
                break;
            }
        }
        let wait = ops.iter().position(|o| matches!(o, MpiOp::WaitAll)).unwrap();
        assert!(matches!(ops[wait + 1], MpiOp::Compute(_)));
    }
}
