//! MPI message matching: posted receives and unexpected messages.
//!
//! Matching is on `(source, tag)` with wildcard source, FIFO within a
//! matching class (MPI's non-overtaking rule for our single-threaded
//! ranks). Rendezvous RTS envelopes queue like messages: a posted receive
//! can match either an already-arrived eager payload or a pending RTS.

use std::collections::VecDeque;

use dfsim_topology::NodeId;

use crate::op::Tag;

/// A posted (pending) receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedRecv {
    /// Accepted source world rank (`None` = any).
    pub src: Option<u32>,
    /// Required tag.
    pub tag: Tag,
    /// The receive request to complete.
    pub req: u32,
}

/// An arrived-but-unmatched envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unexpected {
    /// Sending world rank.
    pub src: u32,
    /// Message tag.
    pub tag: Tag,
    /// What arrived.
    pub kind: UnexpectedKind,
}

/// Payload of an unexpected envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnexpectedKind {
    /// Eager data fully buffered at the receiver: a matching receive
    /// completes immediately.
    Eager,
    /// A rendezvous request-to-send: a matching receive triggers the CTS.
    Rts {
        /// The sender's node (CTS destination).
        sender_node: NodeId,
        /// The sender's request id (echoed through CTS and data).
        send_req: u32,
        /// Payload size that will follow.
        bytes: u64,
    },
}

/// Per-rank matching state.
#[derive(Debug, Default)]
pub struct MatchQueues {
    posted: VecDeque<PostedRecv>,
    unexpected: VecDeque<Unexpected>,
}

impl MatchQueues {
    /// Empty queues.
    pub fn new() -> Self {
        Self::default()
    }

    /// An envelope arrived: match it against the oldest compatible posted
    /// receive, or queue it as unexpected.
    pub fn arrive(&mut self, env: Unexpected) -> Option<PostedRecv> {
        let pos =
            self.posted.iter().position(|p| p.tag == env.tag && p.src.is_none_or(|s| s == env.src));
        match pos {
            Some(i) => self.posted.remove(i),
            None => {
                self.unexpected.push_back(env);
                None
            }
        }
    }

    /// A receive was posted: match it against the oldest compatible
    /// unexpected envelope, or queue it.
    pub fn post(&mut self, recv: PostedRecv) -> Option<Unexpected> {
        let pos = self
            .unexpected
            .iter()
            .position(|u| u.tag == recv.tag && recv.src.is_none_or(|s| s == u.src));
        match pos {
            Some(i) => self.unexpected.remove(i),
            None => {
                self.posted.push_back(recv);
                None
            }
        }
    }

    /// Outstanding posted receives (diagnostics).
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Queued unexpected envelopes (diagnostics).
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eager(src: u32, tag: Tag) -> Unexpected {
        Unexpected { src, tag, kind: UnexpectedKind::Eager }
    }

    #[test]
    fn arrival_matches_posted_by_src_and_tag() {
        let mut q = MatchQueues::new();
        assert_eq!(q.post(PostedRecv { src: Some(3), tag: 7, req: 0 }), None);
        assert_eq!(q.arrive(eager(2, 7)), None, "wrong source must not match");
        let hit = q.arrive(eager(3, 7)).unwrap();
        assert_eq!(hit.req, 0);
        assert_eq!(q.posted_len(), 0);
        assert_eq!(q.unexpected_len(), 1, "the src-2 envelope stays queued");
    }

    #[test]
    fn wildcard_source_matches_anything() {
        let mut q = MatchQueues::new();
        q.post(PostedRecv { src: None, tag: 1, req: 9 });
        let hit = q.arrive(eager(42, 1)).unwrap();
        assert_eq!(hit.req, 9);
    }

    #[test]
    fn post_drains_unexpected_fifo() {
        let mut q = MatchQueues::new();
        assert_eq!(q.arrive(eager(1, 5)), None);
        assert_eq!(q.arrive(eager(1, 5)), None);
        // FIFO within the matching class.
        let first = q.post(PostedRecv { src: Some(1), tag: 5, req: 0 }).unwrap();
        assert_eq!(first.src, 1);
        assert_eq!(q.unexpected_len(), 1);
    }

    #[test]
    fn tags_partition_matching() {
        let mut q = MatchQueues::new();
        q.post(PostedRecv { src: None, tag: 10, req: 0 });
        assert_eq!(q.arrive(eager(0, 11)), None);
        assert!(q.arrive(eager(0, 10)).is_some());
    }

    #[test]
    fn rts_envelopes_queue_and_match() {
        let mut q = MatchQueues::new();
        let rts = Unexpected {
            src: 4,
            tag: 2,
            kind: UnexpectedKind::Rts { sender_node: NodeId(40), send_req: 17, bytes: 1 << 20 },
        };
        assert_eq!(q.arrive(rts), None);
        let hit = q.post(PostedRecv { src: Some(4), tag: 2, req: 3 }).unwrap();
        match hit.kind {
            UnexpectedKind::Rts { send_req, bytes, .. } => {
                assert_eq!(send_req, 17);
                assert_eq!(bytes, 1 << 20);
            }
            other => panic!("expected RTS, got {other:?}"),
        }
    }
}
