//! SST's collective algorithms, expanded to point-to-point micro-operations.
//!
//! * **Alltoall** — multi-step ring exchange (paper §IV): in round `i` the
//!   communicator-relative rank `r` sends to `r+i` and receives from `r−i`,
//!   completing each round before the next, so only one message is in
//!   flight per process per round (peak ingress = one message).
//! * **Allreduce / Reduce / Bcast / Barrier** — binary tree: data is
//!   aggregated from the leaves to the root and then distributed back down
//!   (paper §IV); every tree node has at most two children, so allreduce
//!   peak ingress counts two messages.
//!
//! Expansion happens per rank: [`expand`] returns the micro-op sequence that
//! rank executes for the collective. The micro-ops use *world* ranks.

use crate::op::{CommId, MpiOp, TagSpace};
use crate::rank::MicroOp;

/// Phases within a collective's tag space.
const PHASE_RING: u8 = 0;
const PHASE_UP: u8 = 1;
const PHASE_DOWN: u8 = 2;

/// The collective operations [`expand`] understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// Ring alltoall, `bytes` per pair.
    AllToAll {
        /// Bytes per rank pair.
        bytes: u64,
    },
    /// Tree allreduce of `bytes`.
    AllReduce {
        /// Buffer bytes.
        bytes: u64,
    },
    /// Tree reduce towards `root` (communicator-relative).
    Reduce {
        /// Communicator-relative root.
        root: u32,
        /// Buffer bytes.
        bytes: u64,
    },
    /// Tree broadcast from `root` (communicator-relative).
    Bcast {
        /// Communicator-relative root.
        root: u32,
        /// Buffer bytes.
        bytes: u64,
    },
    /// Tree barrier.
    Barrier,
}

impl Collective {
    /// Lift an [`MpiOp`] collective into a [`Collective`], with its
    /// communicator. Returns `None` for non-collective ops.
    pub fn from_op(op: &MpiOp) -> Option<(CommId, Collective)> {
        match *op {
            MpiOp::AllToAll { comm, bytes } => Some((comm, Collective::AllToAll { bytes })),
            MpiOp::AllReduce { comm, bytes } => Some((comm, Collective::AllReduce { bytes })),
            MpiOp::Reduce { comm, root, bytes } => Some((comm, Collective::Reduce { root, bytes })),
            MpiOp::Bcast { comm, root, bytes } => Some((comm, Collective::Bcast { root, bytes })),
            MpiOp::Barrier { comm } => Some((comm, Collective::Barrier)),
            _ => None,
        }
    }
}

/// Expand a collective into the micro-op sequence executed by the rank at
/// communicator-relative index `me` of a communicator whose world-rank
/// members are `members`. `seq` is the per-(rank, comm) collective sequence
/// number (all members call collectives on a communicator in the same
/// order, so tags agree).
pub fn expand(coll: Collective, comm: CommId, members: &[u32], me: u32, seq: u32) -> Vec<MicroOp> {
    let n = members.len() as u32;
    debug_assert!(me < n);
    if n <= 1 {
        return Vec::new();
    }
    match coll {
        Collective::AllToAll { bytes } => alltoall(comm, members, me, seq, bytes),
        Collective::AllReduce { bytes } => {
            // Reduce to relative root 0, then broadcast back down.
            let mut ops = tree_up(comm, members, me, seq, 0, bytes);
            ops.extend(tree_down(comm, members, me, seq, 0, bytes));
            ops
        }
        Collective::Reduce { root, bytes } => tree_up(comm, members, me, seq, root, bytes),
        Collective::Bcast { root, bytes } => tree_down(comm, members, me, seq, root, bytes),
        Collective::Barrier => {
            let mut ops = tree_up(comm, members, me, seq, 0, 0);
            ops.extend(tree_down(comm, members, me, seq, 0, 0));
            ops
        }
    }
}

/// Ring alltoall: N−1 rounds of one send + one receive, each round
/// completed before the next.
fn alltoall(comm: CommId, members: &[u32], me: u32, seq: u32, bytes: u64) -> Vec<MicroOp> {
    let n = members.len() as u32;
    let tag = TagSpace::collective(comm, seq, PHASE_RING);
    let mut ops = Vec::with_capacity(3 * (n as usize - 1));
    for i in 1..n {
        let dst = members[((me + i) % n) as usize];
        let src = members[((me + n - i) % n) as usize];
        ops.push(MicroOp::Irecv { src: Some(src), tag });
        ops.push(MicroOp::Isend { dst, bytes, tag });
        ops.push(MicroOp::WaitAll);
    }
    ops
}

/// Tree index of `me` relative to `root`: rotate so the root is node 0 of a
/// binary heap layout.
#[inline]
fn rel(me: u32, root: u32, n: u32) -> u32 {
    (me + n - root) % n
}

#[inline]
fn unrel(idx: u32, root: u32, n: u32) -> u32 {
    (idx + root) % n
}

/// Leaf-to-root aggregation (reduce phase).
fn tree_up(
    comm: CommId,
    members: &[u32],
    me: u32,
    seq: u32,
    root: u32,
    bytes: u64,
) -> Vec<MicroOp> {
    let n = members.len() as u32;
    let tag = TagSpace::collective(comm, seq, PHASE_UP);
    let idx = rel(me, root, n);
    let mut ops = Vec::new();
    // Receive partial results from both children (if they exist)…
    for child_idx in [2 * idx + 1, 2 * idx + 2] {
        if child_idx < n {
            let child = members[unrel(child_idx, root, n) as usize];
            ops.push(MicroOp::Irecv { src: Some(child), tag });
        }
    }
    if !ops.is_empty() {
        ops.push(MicroOp::WaitAll);
    }
    // …then forward the combined buffer to the parent.
    if idx != 0 {
        let parent = members[unrel((idx - 1) / 2, root, n) as usize];
        ops.push(MicroOp::Isend { dst: parent, bytes, tag });
        ops.push(MicroOp::WaitAll);
    }
    ops
}

/// Root-to-leaf distribution (broadcast phase).
fn tree_down(
    comm: CommId,
    members: &[u32],
    me: u32,
    seq: u32,
    root: u32,
    bytes: u64,
) -> Vec<MicroOp> {
    let n = members.len() as u32;
    let tag = TagSpace::collective(comm, seq, PHASE_DOWN);
    let idx = rel(me, root, n);
    let mut ops = Vec::new();
    if idx != 0 {
        let parent = members[unrel((idx - 1) / 2, root, n) as usize];
        ops.push(MicroOp::Irecv { src: Some(parent), tag });
        ops.push(MicroOp::WaitAll);
    }
    let mut sent = false;
    for child_idx in [2 * idx + 1, 2 * idx + 2] {
        if child_idx < n {
            let child = members[unrel(child_idx, root, n) as usize];
            ops.push(MicroOp::Isend { dst: child, bytes, tag });
            sent = true;
        }
    }
    if sent {
        ops.push(MicroOp::WaitAll);
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Extract (dst, src) pairs of an op list.
    fn sends_and_recvs(ops: &[MicroOp]) -> (Vec<u32>, Vec<Option<u32>>) {
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for op in ops {
            match op {
                MicroOp::Isend { dst, .. } => sends.push(*dst),
                MicroOp::Irecv { src, .. } => recvs.push(*src),
                _ => {}
            }
        }
        (sends, recvs)
    }

    #[test]
    fn alltoall_is_a_complete_exchange() {
        let members: Vec<u32> = (0..5).collect();
        // Union over all ranks: every ordered pair appears exactly once.
        let mut pair_count = std::collections::HashMap::new();
        for me in 0..5u32 {
            let ops = expand(Collective::AllToAll { bytes: 100 }, CommId(0), &members, me, 0);
            let (sends, recvs) = sends_and_recvs(&ops);
            assert_eq!(sends.len(), 4);
            assert_eq!(recvs.len(), 4);
            for dst in sends {
                *pair_count.entry((me, dst)).or_insert(0u32) += 1;
            }
        }
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    assert_eq!(pair_count.get(&(a, b)), Some(&1), "pair {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn alltoall_rounds_are_serialized() {
        let members: Vec<u32> = (0..4).collect();
        let ops = expand(Collective::AllToAll { bytes: 8 }, CommId(0), &members, 1, 3);
        // Pattern: (Irecv, Isend, WaitAll) × 3 rounds.
        assert_eq!(ops.len(), 9);
        for round in ops.chunks(3) {
            assert!(matches!(round[0], MicroOp::Irecv { .. }));
            assert!(matches!(round[1], MicroOp::Isend { .. }));
            assert!(matches!(round[2], MicroOp::WaitAll));
        }
    }

    #[test]
    fn allreduce_tree_sends_match_recvs_globally() {
        let members: Vec<u32> = (0..7).collect();
        let mut total_sends = 0;
        let mut total_recvs = 0;
        for me in 0..7u32 {
            let ops = expand(Collective::AllReduce { bytes: 64 }, CommId(0), &members, me, 0);
            let (s, r) = sends_and_recvs(&ops);
            total_sends += s.len();
            total_recvs += r.len();
        }
        assert_eq!(total_sends, total_recvs);
        // A 7-node binary tree has 6 edges; up + down = 12 messages.
        assert_eq!(total_sends, 12);
    }

    #[test]
    fn allreduce_peak_ingress_is_two_messages() {
        // The root (rel idx 0) receives from two children in one burst.
        let members: Vec<u32> = (0..7).collect();
        let ops = expand(Collective::AllReduce { bytes: 64 }, CommId(0), &members, 0, 0);
        let first_wait = ops.iter().position(|o| matches!(o, MicroOp::WaitAll)).unwrap();
        let recvs_before =
            ops[..first_wait].iter().filter(|o| matches!(o, MicroOp::Irecv { .. })).count();
        assert_eq!(recvs_before, 2);
    }

    #[test]
    fn bcast_from_nonzero_root_reaches_everyone() {
        let members: Vec<u32> = vec![10, 11, 12, 13, 14];
        let root = 2; // world rank 12
        let mut receives = 0;
        let mut root_recvs = 0;
        for me in 0..5u32 {
            let ops = expand(Collective::Bcast { root, bytes: 8 }, CommId(1), &members, me, 0);
            let (_, r) = sends_and_recvs(&ops);
            if me == root {
                root_recvs += r.len();
            } else {
                assert_eq!(r.len(), 1, "non-root rank {me} receives exactly once");
                receives += 1;
            }
        }
        assert_eq!(root_recvs, 0);
        assert_eq!(receives, 4);
    }

    #[test]
    fn single_member_collective_is_empty() {
        assert!(expand(Collective::AllReduce { bytes: 9 }, CommId(0), &[3], 0, 0).is_empty());
        assert!(expand(Collective::AllToAll { bytes: 9 }, CommId(0), &[3], 0, 0).is_empty());
    }

    #[test]
    fn barrier_moves_zero_byte_payloads() {
        let members: Vec<u32> = (0..3).collect();
        let ops = expand(Collective::Barrier, CommId(0), &members, 0, 0);
        for op in &ops {
            if let MicroOp::Isend { bytes, .. } = op {
                assert_eq!(*bytes, 0);
            }
        }
        assert!(!ops.is_empty());
    }

    #[test]
    fn from_op_lifts_collectives_only() {
        assert!(Collective::from_op(&MpiOp::Compute(5)).is_none());
        assert!(Collective::from_op(&MpiOp::WaitAll).is_none());
        let (c, coll) =
            Collective::from_op(&MpiOp::AllToAll { comm: CommId(2), bytes: 7 }).unwrap();
        assert_eq!(c, CommId(2));
        assert_eq!(coll, Collective::AllToAll { bytes: 7 });
    }
}
