//! Simulated MPI layer — the SST/Firefly substitute (paper §III).
//!
//! Each application rank runs a *program* (a [`op::RankProgram`]) that emits
//! MPI operations: computation intervals, point-to-point sends/receives
//! (blocking and non-blocking) and the collectives the paper's workloads
//! use. The layer implements:
//!
//! * tag/source matching with posted-receive and unexpected-message queues
//!   ([`matching`]),
//! * the eager protocol for small messages and RTS/CTS rendezvous for large
//!   ones ([`sim`]),
//! * SST's collective algorithms ([`collectives`]): Alltoall as a multi-round
//!   ring exchange, Allreduce/Reduce/Bcast/Barrier as binary-tree
//!   aggregation + distribution — the algorithms paper §IV names when
//!   deriving each workload's peak ingress volume,
//! * per-rank communication-time accounting: the time a rank spends blocked
//!   inside MPI calls, which is exactly the paper's "communication time"
//!   (Figs 4, 8, 10),
//! * peak-ingress-volume measurement: the largest burst of message bytes a
//!   rank posts without blocking (Table I).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod collectives;
pub mod matching;
pub mod op;
pub mod rank;
pub mod sim;

pub use op::{CommId, MpiOp, RankProgram, Tag};
pub use sim::{MpiEvent, MpiSim, WorldSched};
