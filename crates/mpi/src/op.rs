//! The operation vocabulary rank programs speak.

use dfsim_des::Time;

/// Message tag. Application tags must stay below [`Tag::COLLECTIVE_BASE`];
/// the collective engine reserves the upper tag space.
pub type Tag = u64;

/// Reserved tag-space helpers.
pub struct TagSpace;

impl TagSpace {
    /// Base of the reserved collective tag space.
    pub const COLLECTIVE_BASE: Tag = 1 << 62;

    /// Tag for a collective instance: unique per (communicator, sequence,
    /// phase) so consecutive collectives on one communicator never
    /// cross-match.
    pub fn collective(comm: CommId, seq: u32, phase: u8) -> Tag {
        Self::COLLECTIVE_BASE | ((comm.0 as Tag) << 40) | ((seq as Tag) << 8) | phase as Tag
    }
}

/// A communicator handle. Communicator 0 is always the application's world;
/// applications may register sub-communicators (e.g. FFT3D's process rows
/// and columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CommId(pub u16);

impl CommId {
    /// The application-wide communicator.
    pub const WORLD: CommId = CommId(0);
}

/// One MPI operation emitted by a rank program. All rank numbers are
/// *world* ranks of the owning application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiOp {
    /// Busy computation for a duration (not counted as communication time).
    Compute(Time),
    /// Blocking standard send.
    Send {
        /// Destination world rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: Tag,
    },
    /// Non-blocking send; completes at a later `WaitAll`.
    Isend {
        /// Destination world rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// Message tag.
        tag: Tag,
    },
    /// Blocking receive. `src = None` receives from any source.
    Recv {
        /// Source world rank (`None` = any).
        src: Option<u32>,
        /// Message tag.
        tag: Tag,
    },
    /// Non-blocking receive; completes at a later `WaitAll`.
    Irecv {
        /// Source world rank (`None` = any).
        src: Option<u32>,
        /// Message tag.
        tag: Tag,
    },
    /// Block until every outstanding non-blocking request of this rank has
    /// completed.
    WaitAll,
    /// Ring-algorithm all-to-all: every pair exchanges `bytes` (SST's
    /// multi-step ring; one message in flight per round).
    AllToAll {
        /// Communicator.
        comm: CommId,
        /// Bytes exchanged per rank pair.
        bytes: u64,
    },
    /// Binary-tree allreduce of a `bytes`-sized buffer.
    AllReduce {
        /// Communicator.
        comm: CommId,
        /// Reduced buffer size in bytes.
        bytes: u64,
    },
    /// Binary-tree reduction towards `root`.
    Reduce {
        /// Communicator.
        comm: CommId,
        /// Root (communicator-relative index).
        root: u32,
        /// Buffer bytes.
        bytes: u64,
    },
    /// Binary-tree broadcast from `root`.
    Bcast {
        /// Communicator.
        comm: CommId,
        /// Root (communicator-relative index).
        root: u32,
        /// Buffer bytes.
        bytes: u64,
    },
    /// Tree barrier (zero-byte allreduce).
    Barrier {
        /// Communicator.
        comm: CommId,
    },
}

/// A rank's behaviour: a lazy stream of MPI operations.
///
/// Programs are constructed knowing their rank and job size (the apps crate
/// bakes these in), and are pulled one operation at a time so million-
/// iteration workloads never materialize their op list.
pub trait RankProgram: Send {
    /// The next operation, or `None` when the rank is finished.
    fn next_op(&mut self) -> Option<MpiOp>;
}

/// Blanket helper: any iterator of operations is a program (useful in
/// tests).
impl<I: Iterator<Item = MpiOp> + Send> RankProgram for I {
    fn next_op(&mut self) -> Option<MpiOp> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_tags_are_unique_per_comm_seq_phase() {
        let a = TagSpace::collective(CommId(0), 0, 0);
        let b = TagSpace::collective(CommId(0), 0, 1);
        let c = TagSpace::collective(CommId(0), 1, 0);
        let d = TagSpace::collective(CommId(1), 0, 0);
        let all = [a, b, c, d];
        for (i, x) in all.iter().enumerate() {
            assert!(*x >= TagSpace::COLLECTIVE_BASE);
            for (j, y) in all.iter().enumerate() {
                if i != j {
                    assert_ne!(x, y);
                }
            }
        }
    }

    #[test]
    fn iterators_are_programs() {
        let mut p = vec![MpiOp::Compute(10), MpiOp::WaitAll].into_iter();
        assert_eq!(p.next_op(), Some(MpiOp::Compute(10)));
        assert_eq!(p.next_op(), Some(MpiOp::WaitAll));
        assert_eq!(p.next_op(), None);
    }
}
