//! Per-rank execution state: the micro-op stack, the request table, and
//! blocking/communication-time accounting.

use dfsim_des::Time;

use crate::matching::MatchQueues;
use crate::op::{RankProgram, Tag};

/// Internal executable steps. Rank programs emit [`crate::op::MpiOp`]s;
/// collectives expand into these, and point-to-point ops map 1:1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOp {
    /// Busy compute.
    Compute(Time),
    /// Non-blocking send.
    Isend {
        /// Destination world rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// Tag.
        tag: Tag,
    },
    /// Blocking send (= Isend + wait on that request).
    Send {
        /// Destination world rank.
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// Tag.
        tag: Tag,
    },
    /// Non-blocking receive.
    Irecv {
        /// Source world rank (`None` = any).
        src: Option<u32>,
        /// Tag.
        tag: Tag,
    },
    /// Blocking receive.
    Recv {
        /// Source world rank (`None` = any).
        src: Option<u32>,
        /// Tag.
        tag: Tag,
    },
    /// Wait for all outstanding requests.
    WaitAll,
}

/// Why a rank is suspended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Block {
    /// Busy computing (not communication time).
    Compute,
    /// Waiting for every outstanding request (`WaitAll` / finalize).
    AllReqs,
    /// Waiting for one specific request (blocking send/recv).
    Req(u32),
}

/// Lifecycle of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqState {
    /// Issued, not complete.
    Pending,
    /// Rendezvous receive matched (CTS sent), data still in flight.
    Matched,
    /// Complete.
    Complete,
}

/// Dense per-rank request table.
#[derive(Debug, Default)]
pub struct ReqTable {
    states: Vec<ReqState>,
    outstanding: u32,
}

impl ReqTable {
    /// Issue a new pending request.
    pub fn issue(&mut self) -> u32 {
        let id = self.states.len() as u32;
        self.states.push(ReqState::Pending);
        self.outstanding += 1;
        id
    }

    /// Mark a rendezvous receive as matched (still outstanding).
    pub fn mark_matched(&mut self, req: u32) {
        let s = &mut self.states[req as usize];
        debug_assert_eq!(*s, ReqState::Pending);
        *s = ReqState::Matched;
    }

    /// Complete a request; returns `false` if it was already complete.
    pub fn complete(&mut self, req: u32) -> bool {
        let s = &mut self.states[req as usize];
        if *s == ReqState::Complete {
            return false;
        }
        *s = ReqState::Complete;
        self.outstanding -= 1;
        true
    }

    /// Whether a request has completed.
    pub fn is_complete(&self, req: u32) -> bool {
        self.states[req as usize] == ReqState::Complete
    }

    /// Requests issued but not complete.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }
}

/// Full state of one rank.
pub struct RankState {
    /// The application program driving this rank.
    pub program: Box<dyn RankProgram>,
    /// Pending micro-ops, stored reversed (pop from the back).
    pub stack: Vec<MicroOp>,
    /// Posted-receive / unexpected-message queues.
    pub match_q: MatchQueues,
    /// Request table.
    pub reqs: ReqTable,
    /// Why the rank is suspended, if it is.
    pub blocked: Option<Block>,
    /// When the current block started.
    pub blocked_since: Time,
    /// Accumulated time blocked inside MPI calls (the paper's
    /// "communication time").
    pub comm_time: Time,
    /// Bytes of sends issued since the rank last blocked (peak-ingress
    /// burst accumulator).
    pub burst: u64,
    /// Per-communicator collective sequence numbers.
    pub coll_seq: Vec<u32>,
    /// Set once the program is exhausted and all requests have drained.
    pub finished_at: Option<Time>,
    /// Program exhausted; draining outstanding requests.
    pub finishing: bool,
}

impl std::fmt::Debug for RankState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankState")
            .field("stack_len", &self.stack.len())
            .field("blocked", &self.blocked)
            .field("outstanding", &self.reqs.outstanding())
            .field("comm_time", &self.comm_time)
            .field("finished_at", &self.finished_at)
            .finish()
    }
}

impl RankState {
    /// Fresh rank state for a program; `num_comms` sizes the collective
    /// sequence table.
    pub fn new(program: Box<dyn RankProgram>, num_comms: usize) -> Self {
        Self {
            program,
            stack: Vec::new(),
            match_q: MatchQueues::new(),
            reqs: ReqTable::default(),
            blocked: None,
            blocked_since: 0,
            comm_time: 0,
            burst: 0,
            coll_seq: vec![0; num_comms],
            finished_at: None,
            finishing: false,
        }
    }

    /// Whether this rank has fully finished.
    pub fn is_finished(&self) -> bool {
        self.finished_at.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lifecycle() {
        let mut t = ReqTable::default();
        let a = t.issue();
        let b = t.issue();
        assert_eq!(t.outstanding(), 2);
        assert!(!t.is_complete(a));
        assert!(t.complete(a));
        assert!(!t.complete(a), "double-complete must be rejected");
        assert_eq!(t.outstanding(), 1);
        t.mark_matched(b);
        assert_eq!(t.outstanding(), 1, "matched is still outstanding");
        assert!(t.complete(b));
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn rank_state_initializes_clean() {
        let prog = Vec::<crate::op::MpiOp>::new().into_iter();
        let r = RankState::new(Box::new(prog), 3);
        assert!(!r.is_finished());
        assert_eq!(r.coll_seq, vec![0, 0, 0]);
        assert_eq!(r.comm_time, 0);
    }
}
