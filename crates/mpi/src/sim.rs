//! [`MpiSim`]: the MPI execution engine.
//!
//! The engine advances each rank's program until it blocks (compute, a
//! blocking call, or `WaitAll`), issues transport messages through the
//! network, and reacts to network effects (message injected / delivered) by
//! completing requests and waking ranks. Large sends use RTS/CTS
//! rendezvous; small ones go eagerly (threshold configurable, SST-style).

use std::collections::BTreeMap;

use dfsim_des::{Scheduler, Time, WireReader, WireWriter};
use dfsim_metrics::{AppId, Recorder};
use dfsim_network::{partition, MessageId, NetEffect, NetEvent, NetworkSim};
use dfsim_topology::NodeId;

use crate::collectives::{expand, Collective};
use crate::matching::{PostedRecv, Unexpected, UnexpectedKind};
use crate::op::{MpiOp, RankProgram, Tag};
use crate::rank::{Block, MicroOp, RankState};

/// Events owned by the MPI layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiEvent {
    /// A rank's compute interval ended.
    ComputeDone {
        /// Application.
        app: AppId,
        /// World rank within the application.
        rank: u32,
    },
}

/// The world scheduler contract: whoever drives the MPI layer must be able
/// to schedule both MPI and network events (the core crate's world scheduler
/// lifts both into its world event enum).
pub trait WorldSched: Scheduler<MpiEvent> + Scheduler<NetEvent> {}
impl<T: Scheduler<MpiEvent> + Scheduler<NetEvent>> WorldSched for T {}

#[inline]
fn now<S: WorldSched>(s: &S) -> Time {
    Scheduler::<MpiEvent>::now(s)
}

/// MPI-layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct MpiConfig {
    /// Messages up to this size are sent eagerly; larger ones use RTS/CTS
    /// rendezvous.
    pub eager_threshold: u64,
}

impl Default for MpiConfig {
    fn default() -> Self {
        Self { eager_threshold: 16 * 1024 }
    }
}

/// Transport-message bookkeeping: what an in-flight network message means.
#[derive(Debug, Clone, Copy)]
enum MsgMeta {
    /// Eagerly sent payload.
    EagerData { app: AppId, src_rank: u32, dst_rank: u32, tag: Tag, send_req: u32 },
    /// Rendezvous request-to-send (control).
    Rts { app: AppId, src_rank: u32, dst_rank: u32, tag: Tag, bytes: u64, send_req: u32 },
    /// Rendezvous clear-to-send (control), returning to the sender.
    Cts { app: AppId, sender_rank: u32, send_req: u32, recv_rank: u32, recv_req: u32, bytes: u64 },
    /// Rendezvous payload.
    RdvData { app: AppId, src_rank: u32, dst_rank: u32, recv_req: u32, send_req: u32 },
}

/// One application: its placement, communicators and rank states.
struct AppState {
    nodes: Vec<NodeId>,
    comms: Vec<Vec<u32>>,
    ranks: Vec<RankState>,
    unfinished: usize,
    finished_at: Option<Time>,
}

/// The MPI simulation (all co-running applications).
pub struct MpiSim {
    cfg: MpiConfig,
    apps: Vec<Option<AppState>>,
    meta: Vec<Option<MsgMeta>>,
    /// Metadata of messages owned by other shards (partitioned runs), keyed
    /// by tagged message id. Lookup-only — never iterated, so the hash map
    /// cannot introduce nondeterminism.
    foreign_meta: BTreeMap<u64, MsgMeta>,
    /// Apps whose last rank finished since the last [`MpiSim::drain_finished`]
    /// call (the churn loop reclaims their nodes).
    newly_finished: Vec<AppId>,
}

impl Default for MpiSim {
    fn default() -> Self {
        Self::new(MpiConfig::default())
    }
}

impl MpiSim {
    /// Build an empty engine.
    pub fn new(cfg: MpiConfig) -> Self {
        Self {
            cfg,
            apps: Vec::new(),
            meta: Vec::new(),
            foreign_meta: BTreeMap::new(),
            newly_finished: Vec::new(),
        }
    }

    /// Register an application: `nodes[r]` is the node of world rank `r`,
    /// `programs[r]` its behaviour, `extra_comms` any sub-communicators
    /// (communicator 0 — the world — is added automatically).
    pub fn add_app(
        &mut self,
        app: AppId,
        nodes: Vec<NodeId>,
        programs: Vec<Box<dyn RankProgram>>,
        extra_comms: Vec<Vec<u32>>,
    ) {
        assert_eq!(nodes.len(), programs.len(), "one program per rank");
        assert!(!nodes.is_empty(), "empty application");
        let mut comms = Vec::with_capacity(1 + extra_comms.len());
        comms.push((0..nodes.len() as u32).collect());
        comms.extend(extra_comms);
        let num_comms = comms.len();
        let n = nodes.len();
        let ranks: Vec<RankState> =
            programs.into_iter().map(|p| RankState::new(p, num_comms)).collect();
        let idx = app.idx();
        while self.apps.len() <= idx {
            self.apps.push(None);
        }
        self.apps[idx] = Some(AppState { nodes, comms, ranks, unfinished: n, finished_at: None });
    }

    /// Start every registered rank (call once at t = 0).
    pub fn start<S: WorldSched>(
        &mut self,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        for a in 0..self.apps.len() {
            if self.apps[a].is_some() {
                self.start_app(AppId(a as u16), sched, net, rec);
            }
        }
    }

    /// Start one registered application's ranks at the current simulation
    /// time (mid-run spawn for churn scenarios; equivalent to [`MpiSim::start`]
    /// for apps registered before t = 0).
    pub fn start_app<S: WorldSched>(
        &mut self,
        app: AppId,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        // lint: allow(no-panic-paths) — AppIds are minted by `register` and never removed; a missing slot means the caller forged an id, which must stop the run
        let n = self.apps[app.idx()].as_ref().expect("unknown app").ranks.len();
        for r in 0..n as u32 {
            self.advance(app, r, sched, net, rec);
        }
    }

    /// Start a single rank of a registered application at the current
    /// simulation time. The partitioned engine starts only the ranks placed
    /// on nodes this shard owns — while iterating all ranks in the same
    /// global order as [`MpiSim::start_app`], so sequence-number accounting
    /// stays aligned across shards.
    pub fn start_rank<S: WorldSched>(
        &mut self,
        app: AppId,
        rank: u32,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        self.advance(app, rank, sched, net, rec);
    }

    // ---- partitioning ------------------------------------------------------

    /// Serialize the metadata of a message that is being exported to another
    /// shard (compact frame payload for the barrier exchange). The local
    /// entry is kept: the origin shard still consumes the `MessageInjected`
    /// effect when the send completes locally.
    pub fn export_meta(&self, msg: MessageId) -> Vec<u8> {
        let meta = self
            .meta
            .get(msg.idx())
            .copied()
            .flatten()
            // lint: allow(no-panic-paths) — every message the boundary exports was locally injected with metadata recorded in the same call; absence is a protocol bug, not an input condition
            .expect("exporting a message without metadata");
        let mut w = WireWriter::new();
        match meta {
            MsgMeta::EagerData { app, src_rank, dst_rank, tag, send_req } => {
                w.u8(0);
                w.u16(app.0);
                w.u32(src_rank);
                w.u32(dst_rank);
                w.u64(tag);
                w.u32(send_req);
            }
            MsgMeta::Rts { app, src_rank, dst_rank, tag, bytes, send_req } => {
                w.u8(1);
                w.u16(app.0);
                w.u32(src_rank);
                w.u32(dst_rank);
                w.u64(tag);
                w.u64(bytes);
                w.u32(send_req);
            }
            MsgMeta::Cts { app, sender_rank, send_req, recv_rank, recv_req, bytes } => {
                w.u8(2);
                w.u16(app.0);
                w.u32(sender_rank);
                w.u32(send_req);
                w.u32(recv_rank);
                w.u32(recv_req);
                w.u64(bytes);
            }
            MsgMeta::RdvData { app, src_rank, dst_rank, recv_req, send_req } => {
                w.u8(3);
                w.u16(app.0);
                w.u32(src_rank);
                w.u32(dst_rank);
                w.u32(recv_req);
                w.u32(send_req);
            }
        }
        w.into_frame()
    }

    /// Register the metadata of a foreign message under its tagged id (the
    /// receiving side of [`MpiSim::export_meta`]).
    pub fn import_meta(&mut self, tagged: u64, bytes: &[u8]) {
        debug_assert!(partition::is_tagged(tagged));
        let mut r = WireReader::new(bytes);
        let meta = match r.u8() {
            0 => MsgMeta::EagerData {
                app: AppId(r.u16()),
                src_rank: r.u32(),
                dst_rank: r.u32(),
                tag: r.u64(),
                send_req: r.u32(),
            },
            1 => MsgMeta::Rts {
                app: AppId(r.u16()),
                src_rank: r.u32(),
                dst_rank: r.u32(),
                tag: r.u64(),
                bytes: r.u64(),
                send_req: r.u32(),
            },
            2 => MsgMeta::Cts {
                app: AppId(r.u16()),
                sender_rank: r.u32(),
                send_req: r.u32(),
                recv_rank: r.u32(),
                recv_req: r.u32(),
                bytes: r.u64(),
            },
            3 => MsgMeta::RdvData {
                app: AppId(r.u16()),
                src_rank: r.u32(),
                dst_rank: r.u32(),
                recv_req: r.u32(),
                send_req: r.u32(),
            },
            // lint: allow(no-panic-paths) — meta frames come from a sibling partition over the trusted intra-run wire protocol, not from external input; a bad tag means memory corruption or a version skew bug
            t => panic!("corrupt meta frame: tag {t}"),
        };
        debug_assert!(r.is_empty(), "trailing bytes in meta frame");
        let prev = self.foreign_meta.insert(tagged, meta);
        debug_assert!(prev.is_none(), "duplicate meta import");
    }

    /// Process a release notice for a message this shard created whose
    /// packets were all delivered on a foreign shard: drop the metadata and
    /// free the network slab slot so the id can be recycled.
    pub fn release_exported(&mut self, tagged: u64, net: &mut NetworkSim) {
        let idx = (tagged & partition::IDX_MASK) as usize;
        let prev = self.meta.get_mut(idx).and_then(Option::take);
        debug_assert!(prev.is_some(), "release notice for a message without metadata");
        net.release_exported_slot(tagged);
    }

    /// Move the apps whose last rank finished since the previous call into
    /// `out` (appending). The churn loop polls this after every event; the
    /// vector is almost always empty, so the call is branch-cheap.
    pub fn drain_finished(&mut self, out: &mut Vec<AppId>) {
        if !self.newly_finished.is_empty() {
            out.append(&mut self.newly_finished);
        }
    }

    /// Whether every rank of every application has finished.
    pub fn all_finished(&self) -> bool {
        self.apps.iter().flatten().all(|a| a.unfinished == 0)
    }

    /// When an application's last rank finished.
    pub fn app_finished_at(&self, app: AppId) -> Option<Time> {
        self.apps.get(app.idx())?.as_ref()?.finished_at
    }

    /// Per-rank communication times of an app (world-rank order).
    pub fn comm_times(&self, app: AppId) -> Vec<Time> {
        self.apps[app.idx()]
            .as_ref()
            .map(|a| a.ranks.iter().map(|r| r.comm_time).collect())
            .unwrap_or_default()
    }

    /// Handle an MPI event.
    pub fn handle<S: WorldSched>(
        &mut self,
        ev: MpiEvent,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        match ev {
            MpiEvent::ComputeDone { app, rank } => {
                let state = self.rank_mut(app, rank);
                debug_assert_eq!(state.blocked, Some(Block::Compute));
                state.blocked = None; // compute is not communication time
                self.advance(app, rank, sched, net, rec);
            }
        }
    }

    /// Consume a network effect (message injected / delivered).
    pub fn on_net_effect<S: WorldSched>(
        &mut self,
        eff: NetEffect,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        match eff {
            NetEffect::MessageInjected { msg, .. } => self.on_injected(msg, sched, net, rec),
            NetEffect::MessageDelivered { msg, .. } => self.on_delivered(msg, sched, net, rec),
        }
    }

    // ---- internals ---------------------------------------------------------

    fn app_mut(&mut self, app: AppId) -> &mut AppState {
        // lint: allow(no-panic-paths) — AppIds are minted by `register` and never removed; a missing slot means the caller forged an id, which must stop the run
        self.apps[app.idx()].as_mut().expect("unknown app")
    }

    fn rank_mut(&mut self, app: AppId, rank: u32) -> &mut RankState {
        &mut self.app_mut(app).ranks[rank as usize]
    }

    fn set_meta(&mut self, msg: MessageId, meta: MsgMeta) {
        let i = msg.idx();
        while self.meta.len() <= i {
            self.meta.push(None);
        }
        self.meta[i] = Some(meta);
    }

    /// Run one rank until it blocks or finishes.
    fn advance<S: WorldSched>(
        &mut self,
        app: AppId,
        rank: u32,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        loop {
            let t = now(sched);
            let state = self.rank_mut(app, rank);
            if state.blocked.is_some() || state.is_finished() {
                return;
            }
            let Some(op) = state.stack.pop() else {
                // Stack empty: pull the next program op (or finalize).
                match state.program.next_op() {
                    Some(op) => {
                        self.push_program_op(app, rank, op);
                        continue;
                    }
                    None => {
                        let state = self.rank_mut(app, rank);
                        state.finishing = true;
                        if state.reqs.outstanding() > 0 {
                            state.blocked = Some(Block::AllReqs);
                            state.blocked_since = t;
                            self.flush_burst(app, rank, rec);
                            return;
                        }
                        self.finish_rank(app, rank, t, rec);
                        return;
                    }
                }
            };
            match op {
                MicroOp::Compute(d) => {
                    self.flush_burst(app, rank, rec);
                    let state = self.rank_mut(app, rank);
                    state.blocked = Some(Block::Compute);
                    Scheduler::<MpiEvent>::at(sched, t + d, MpiEvent::ComputeDone { app, rank });
                    return;
                }
                MicroOp::Isend { dst, bytes, tag } => {
                    self.do_send(app, rank, dst, bytes, tag, sched, net, rec);
                }
                MicroOp::Send { dst, bytes, tag } => {
                    let req = self.do_send(app, rank, dst, bytes, tag, sched, net, rec);
                    let state = self.rank_mut(app, rank);
                    if !state.reqs.is_complete(req) {
                        state.blocked = Some(Block::Req(req));
                        state.blocked_since = t;
                        self.flush_burst(app, rank, rec);
                        return;
                    }
                }
                MicroOp::Irecv { src, tag } => {
                    self.do_recv(app, rank, src, tag, sched, net, rec);
                }
                MicroOp::Recv { src, tag } => {
                    let req = self.do_recv(app, rank, src, tag, sched, net, rec);
                    let state = self.rank_mut(app, rank);
                    if !state.reqs.is_complete(req) {
                        state.blocked = Some(Block::Req(req));
                        state.blocked_since = t;
                        self.flush_burst(app, rank, rec);
                        return;
                    }
                }
                MicroOp::WaitAll => {
                    let state = self.rank_mut(app, rank);
                    if state.reqs.outstanding() > 0 {
                        state.blocked = Some(Block::AllReqs);
                        state.blocked_since = t;
                        self.flush_burst(app, rank, rec);
                        return;
                    }
                }
            }
        }
    }

    /// Translate a program-level op onto the rank's micro-op stack.
    fn push_program_op(&mut self, app: AppId, rank: u32, op: MpiOp) {
        if let Some((comm, coll)) = Collective::from_op(&op) {
            // Split-borrow the app so the member list stays a borrow (no
            // per-collective clone of the communicator) while the rank
            // state is mutated.
            let AppState { comms, ranks, .. } = self.app_mut(app);
            let members = comms
                .get(comm.0 as usize)
                // lint: allow(no-panic-paths) — communicator ids are produced by `comm_create` on this same app and never deleted; an out-of-range id is a workload-generator bug worth a loud stop
                .unwrap_or_else(|| panic!("unknown communicator {comm:?}"));
            let Some(me) = members.iter().position(|&m| m == rank) else {
                return; // not a member: collective is a no-op for this rank
            };
            let state = &mut ranks[rank as usize];
            let seq = state.coll_seq[comm.0 as usize];
            state.coll_seq[comm.0 as usize] += 1;
            let ops = expand(coll, comm, members, me as u32, seq);
            state.stack.extend(ops.into_iter().rev());
            return;
        }
        let micro = match op {
            MpiOp::Compute(d) => MicroOp::Compute(d),
            MpiOp::Send { dst, bytes, tag } => MicroOp::Send { dst, bytes, tag },
            MpiOp::Isend { dst, bytes, tag } => MicroOp::Isend { dst, bytes, tag },
            MpiOp::Recv { src, tag } => MicroOp::Recv { src, tag },
            MpiOp::Irecv { src, tag } => MicroOp::Irecv { src, tag },
            MpiOp::WaitAll => MicroOp::WaitAll,
            // lint: allow(no-panic-paths) — the `is_collective` branch above returned early for every collective op, so only point-to-point ops reach this match
            _ => unreachable!("collectives handled above"),
        };
        self.rank_mut(app, rank).stack.push(micro);
    }

    /// Issue a send request and hand the message (or its RTS) to the
    /// network. Returns the request id.
    #[allow(clippy::too_many_arguments)]
    fn do_send<S: WorldSched>(
        &mut self,
        app: AppId,
        rank: u32,
        dst: u32,
        bytes: u64,
        tag: Tag,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) -> u32 {
        let a = self.app_mut(app);
        let src_node = a.nodes[rank as usize];
        let dst_node = a.nodes[dst as usize];
        let state = &mut a.ranks[rank as usize];
        let req = state.reqs.issue();
        state.burst += bytes;
        if bytes <= self.cfg.eager_threshold {
            let msg = net.send_message(sched, rec, src_node, dst_node, bytes, app);
            self.set_meta(
                msg,
                MsgMeta::EagerData { app, src_rank: rank, dst_rank: dst, tag, send_req: req },
            );
        } else {
            let msg = net.send_message(sched, rec, src_node, dst_node, 0, app);
            self.set_meta(
                msg,
                MsgMeta::Rts { app, src_rank: rank, dst_rank: dst, tag, bytes, send_req: req },
            );
        }
        req
    }

    /// Post a receive; may complete immediately against an unexpected eager
    /// message, or trigger the CTS of a queued RTS.
    #[allow(clippy::too_many_arguments)]
    fn do_recv<S: WorldSched>(
        &mut self,
        app: AppId,
        rank: u32,
        src: Option<u32>,
        tag: Tag,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) -> u32 {
        let state = self.rank_mut(app, rank);
        let req = state.reqs.issue();
        match state.match_q.post(PostedRecv { src, tag, req }) {
            None => {}
            Some(Unexpected { kind: UnexpectedKind::Eager, .. }) => {
                // Data already buffered locally: complete at once.
                state.reqs.complete(req);
            }
            Some(Unexpected {
                src: rts_src,
                kind: UnexpectedKind::Rts { sender_node, send_req, bytes },
                ..
            }) => {
                state.reqs.mark_matched(req);
                self.send_cts(
                    app,
                    rts_src,
                    sender_node,
                    send_req,
                    rank,
                    req,
                    bytes,
                    sched,
                    net,
                    rec,
                );
            }
        }
        req
    }

    /// Send the rendezvous clear-to-send back to the data's sender.
    #[allow(clippy::too_many_arguments)]
    fn send_cts<S: WorldSched>(
        &mut self,
        app: AppId,
        sender_rank: u32,
        sender_node: NodeId,
        send_req: u32,
        recv_rank: u32,
        recv_req: u32,
        bytes: u64,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        let my_node = self.app_mut(app).nodes[recv_rank as usize];
        let msg = net.send_message(sched, rec, my_node, sender_node, 0, app);
        self.set_meta(msg, MsgMeta::Cts { app, sender_rank, send_req, recv_rank, recv_req, bytes });
    }

    /// Record the rank's accumulated ingress burst (peak-ingress metric).
    fn flush_burst(&mut self, app: AppId, rank: u32, rec: &mut Recorder) {
        let state = self.rank_mut(app, rank);
        let burst = std::mem::take(&mut state.burst);
        if burst > 0 {
            rec.ingress_burst(app, burst);
        }
    }

    /// Complete a request and wake its rank if the block condition cleared.
    fn complete_req<S: WorldSched>(
        &mut self,
        app: AppId,
        rank: u32,
        req: u32,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        let t = now(sched);
        let state = self.rank_mut(app, rank);
        if !state.reqs.complete(req) {
            return;
        }
        let wake = match state.blocked {
            Some(Block::Req(r)) => r == req,
            Some(Block::AllReqs) => state.reqs.outstanding() == 0,
            _ => false,
        };
        if !wake {
            return;
        }
        state.comm_time += t - state.blocked_since;
        state.blocked = None;
        if state.finishing && state.stack.is_empty() && state.reqs.outstanding() == 0 {
            self.finish_rank(app, rank, t, rec);
            return;
        }
        self.advance(app, rank, sched, net, rec);
    }

    fn finish_rank(&mut self, app: AppId, rank: u32, t: Time, rec: &mut Recorder) {
        let a = self.app_mut(app);
        let state = &mut a.ranks[rank as usize];
        debug_assert!(state.finished_at.is_none());
        state.finished_at = Some(t);
        rec.rank_finished(app, rank, state.comm_time, t);
        a.unfinished -= 1;
        if a.unfinished == 0 {
            a.finished_at = Some(t);
            self.newly_finished.push(app);
        }
    }

    fn on_injected<S: WorldSched>(
        &mut self,
        msg: MessageId,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        let Some(meta) = self.meta.get(msg.idx()).copied().flatten() else {
            return;
        };
        match meta {
            MsgMeta::EagerData { app, src_rank, send_req, .. }
            | MsgMeta::RdvData { app, src_rank, send_req, .. } => {
                // Local completion: the sender's buffer is reusable.
                self.complete_req(app, src_rank, send_req, sched, net, rec);
            }
            MsgMeta::Rts { .. } | MsgMeta::Cts { .. } => {}
        }
    }

    fn on_delivered<S: WorldSched>(
        &mut self,
        msg: MessageId,
        sched: &mut S,
        net: &mut NetworkSim,
        rec: &mut Recorder,
    ) {
        // The Delivered effect is a message's last act. Take the metadata
        // first, then recycle the network slab slot, so any follow-up send
        // below (CTS, rendezvous payload) may reuse the id without clashing
        // with the entry being processed. Foreign messages (tagged ids,
        // partitioned runs) resolve against the imported-meta table; the
        // release routes a notice back to the origin shard.
        let meta = if partition::is_tagged(msg.0) {
            self.foreign_meta.remove(&msg.0)
        } else {
            self.meta.get_mut(msg.idx()).and_then(Option::take)
        };
        net.release_message(msg);
        let Some(meta) = meta else {
            return;
        };
        match meta {
            MsgMeta::EagerData { app, src_rank, dst_rank, tag, .. } => {
                let state = self.rank_mut(app, dst_rank);
                if let Some(recv) = state.match_q.arrive(Unexpected {
                    src: src_rank,
                    tag,
                    kind: UnexpectedKind::Eager,
                }) {
                    self.complete_req(app, dst_rank, recv.req, sched, net, rec);
                }
            }
            MsgMeta::Rts { app, src_rank, dst_rank, tag, bytes, send_req } => {
                let sender_node = self.app_mut(app).nodes[src_rank as usize];
                let state = self.rank_mut(app, dst_rank);
                if let Some(recv) = state.match_q.arrive(Unexpected {
                    src: src_rank,
                    tag,
                    kind: UnexpectedKind::Rts { sender_node, send_req, bytes },
                }) {
                    state.reqs.mark_matched(recv.req);
                    self.send_cts(
                        app,
                        src_rank,
                        sender_node,
                        send_req,
                        dst_rank,
                        recv.req,
                        bytes,
                        sched,
                        net,
                        rec,
                    );
                }
            }
            MsgMeta::Cts { app, sender_rank, send_req, recv_rank, recv_req, bytes } => {
                // The receiver is ready: ship the payload.
                let a = self.app_mut(app);
                let src_node = a.nodes[sender_rank as usize];
                let dst_node = a.nodes[recv_rank as usize];
                let data = net.send_message(sched, rec, src_node, dst_node, bytes, app);
                self.set_meta(
                    data,
                    MsgMeta::RdvData {
                        app,
                        src_rank: sender_rank,
                        dst_rank: recv_rank,
                        recv_req,
                        send_req,
                    },
                );
            }
            MsgMeta::RdvData { app, dst_rank, recv_req, .. } => {
                self.complete_req(app, dst_rank, recv_req, sched, net, rec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_des::queue::PendingEvents;
    use dfsim_des::{EventQueue, SimRng};
    use dfsim_metrics::RecorderConfig;
    use dfsim_network::{RoutingAlgo, RoutingConfig};
    use dfsim_topology::{DragonflyParams, LinkTiming, Topology};

    /// World event + scheduler for driving MPI + network together in tests
    /// (mirrors what dfsim-core does).
    #[derive(Debug)]
    enum WE {
        Net(NetEvent),
        Mpi(MpiEvent),
    }

    struct WS<'a> {
        q: &'a mut EventQueue<WE>,
    }
    impl Scheduler<NetEvent> for WS<'_> {
        fn now(&self) -> Time {
            self.q.now()
        }
        fn at(&mut self, t: Time, e: NetEvent) {
            self.q.push(t, WE::Net(e));
        }
    }
    impl Scheduler<MpiEvent> for WS<'_> {
        fn now(&self) -> Time {
            self.q.now()
        }
        fn at(&mut self, t: Time, e: MpiEvent) {
            self.q.push(t, WE::Mpi(e));
        }
    }

    struct World {
        mpi: MpiSim,
        net: NetworkSim,
        rec: Recorder,
        q: EventQueue<WE>,
    }

    impl World {
        fn new() -> Self {
            let topo = std::sync::Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
            let rec = Recorder::new(&topo, RecorderConfig::default());
            let net = NetworkSim::new(
                topo,
                LinkTiming::default(),
                RoutingConfig::new(RoutingAlgo::UgalG),
                &SimRng::new(5),
            );
            Self { mpi: MpiSim::default(), net, rec, q: EventQueue::new() }
        }

        fn run(&mut self) -> Time {
            {
                let mut s = WS { q: &mut self.q };
                self.mpi.start(&mut s, &mut self.net, &mut self.rec);
            }
            let mut effects = Vec::new();
            let mut steps = 0u64;
            while let Some((t, ev)) = self.q.pop() {
                let mut s = WS { q: &mut self.q };
                match ev {
                    WE::Net(e) => {
                        self.net.handle(e, &mut s, &mut self.rec, &mut effects);
                        for eff in effects.drain(..) {
                            let mut s = WS { q: &mut self.q };
                            self.mpi.on_net_effect(eff, &mut s, &mut self.net, &mut self.rec);
                        }
                    }
                    WE::Mpi(e) => self.mpi.handle(e, &mut s, &mut self.net, &mut self.rec),
                }
                steps += 1;
                assert!(steps < 50_000_000, "runaway");
                if steps.is_multiple_of(1024) && self.mpi.all_finished() {
                    break;
                }
                let _ = t;
            }
            // Drain any remaining events (e.g. credits) so time settles.
            self.q.now()
        }
    }

    fn prog(ops: Vec<MpiOp>) -> Box<dyn RankProgram> {
        Box::new(ops.into_iter())
    }

    #[test]
    fn ping_pong_completes_with_comm_time() {
        let mut w = World::new();
        // Rank 0 on node 0, rank 1 on node 40 (different group).
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(40)],
            vec![
                prog(vec![
                    MpiOp::Send { dst: 1, bytes: 4096, tag: 1 },
                    MpiOp::Recv { src: Some(1), tag: 2 },
                ]),
                prog(vec![
                    MpiOp::Recv { src: Some(0), tag: 1 },
                    MpiOp::Send { dst: 0, bytes: 4096, tag: 2 },
                ]),
            ],
            vec![],
        );
        w.run();
        assert!(w.mpi.all_finished());
        let t = w.mpi.app_finished_at(AppId(0)).unwrap();
        assert!(t > 0);
        let comm = w.mpi.comm_times(AppId(0));
        assert!(comm[0] > 0, "rank 0 must have blocked on recv");
        assert!(comm[1] > 0, "rank 1 must have blocked on recv");
    }

    #[test]
    fn rendezvous_path_for_large_messages() {
        let mut w = World::new();
        let big = 1 << 20; // 1 MiB ≫ eager threshold
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(71)],
            vec![
                prog(vec![MpiOp::Send { dst: 1, bytes: big, tag: 9 }]),
                prog(vec![MpiOp::Recv { src: Some(0), tag: 9 }]),
            ],
            vec![],
        );
        w.run();
        assert!(w.mpi.all_finished());
        // Wire bytes = RTS (64) + CTS (64) + payload.
        let app = w.rec.app(AppId(0)).unwrap();
        assert_eq!(app.delivered.total(), 64 + 64 + big);
    }

    #[test]
    fn unexpected_messages_buffer_until_recv_posted() {
        let mut w = World::new();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(30)],
            vec![
                prog(vec![MpiOp::Send { dst: 1, bytes: 512, tag: 5 }]),
                prog(vec![
                    // Receiver computes first: the eager payload arrives
                    // unexpected, then matches instantly.
                    MpiOp::Compute(5_000_000), // 5 µs
                    MpiOp::Recv { src: Some(0), tag: 5 },
                ]),
            ],
            vec![],
        );
        w.run();
        assert!(w.mpi.all_finished());
        let comm = w.mpi.comm_times(AppId(0));
        // The receive matched a buffered message: near-zero block time.
        assert!(comm[1] < 1_000_000, "recv should complete instantly, took {}", comm[1]);
    }

    #[test]
    fn alltoall_over_subcommunicator() {
        let mut w = World::new();
        let nodes: Vec<NodeId> = (0..6).map(|i| NodeId(i * 10)).collect();
        let programs = (0..6)
            .map(|_| prog(vec![MpiOp::AllToAll { comm: crate::op::CommId(1), bytes: 2048 }]))
            .collect();
        // Sub-communicator: ranks {0, 2, 4}.
        w.mpi.add_app(AppId(0), nodes, programs, vec![vec![0, 2, 4]]);
        w.run();
        assert!(w.mpi.all_finished());
        // 3 members × 2 peers × 2048 B.
        let app = w.rec.app(AppId(0)).unwrap();
        assert_eq!(app.delivered.total(), 3 * 2 * 2048);
    }

    #[test]
    fn allreduce_world_synchronizes_all_ranks() {
        let mut w = World::new();
        let n = 9u32;
        let nodes: Vec<NodeId> = (0..n).map(|i| NodeId(i * 7)).collect();
        let programs = (0..n)
            .map(|_| {
                prog(vec![
                    MpiOp::AllReduce { comm: crate::op::CommId(0), bytes: 8192 },
                    MpiOp::Compute(1_000),
                    MpiOp::AllReduce { comm: crate::op::CommId(0), bytes: 8192 },
                ])
            })
            .collect();
        w.mpi.add_app(AppId(0), nodes, programs, vec![]);
        w.run();
        assert!(w.mpi.all_finished());
        // Tree edges: n−1 = 8, up + down, twice: 4 × 8 messages of 8 KiB.
        let app = w.rec.app(AppId(0)).unwrap();
        assert_eq!(app.delivered.total(), 4 * 8 * 8192);
    }

    #[test]
    fn barrier_finishes_and_moves_only_control_bytes() {
        let mut w = World::new();
        let nodes: Vec<NodeId> = (0..5).map(|i| NodeId(i + 1)).collect();
        let programs =
            (0..5).map(|_| prog(vec![MpiOp::Barrier { comm: crate::op::CommId(0) }])).collect();
        w.mpi.add_app(AppId(0), nodes, programs, vec![]);
        w.run();
        assert!(w.mpi.all_finished());
        let app = w.rec.app(AppId(0)).unwrap();
        // 4 edges × 2 phases × 64 B control packets.
        assert_eq!(app.delivered.total(), 8 * 64);
    }

    #[test]
    fn two_apps_are_isolated() {
        let mut w = World::new();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(20)],
            vec![
                prog(vec![MpiOp::Send { dst: 1, bytes: 1024, tag: 1 }]),
                prog(vec![MpiOp::Recv { src: Some(0), tag: 1 }]),
            ],
            vec![],
        );
        w.mpi.add_app(
            AppId(1),
            vec![NodeId(1), NodeId(21)],
            vec![
                prog(vec![MpiOp::Send { dst: 1, bytes: 2048, tag: 1 }]),
                prog(vec![MpiOp::Recv { src: Some(0), tag: 1 }]),
            ],
            vec![],
        );
        w.run();
        assert!(w.mpi.all_finished());
        assert_eq!(w.rec.app(AppId(0)).unwrap().delivered.total(), 1024);
        assert_eq!(w.rec.app(AppId(1)).unwrap().delivered.total(), 2048);
    }

    #[test]
    fn wildcard_recv_accepts_any_source() {
        let mut w = World::new();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(10), NodeId(50)],
            vec![
                prog(vec![
                    MpiOp::Irecv { src: None, tag: 3 },
                    MpiOp::Irecv { src: None, tag: 3 },
                    MpiOp::WaitAll,
                ]),
                prog(vec![MpiOp::Send { dst: 0, bytes: 256, tag: 3 }]),
                prog(vec![MpiOp::Send { dst: 0, bytes: 256, tag: 3 }]),
            ],
            vec![],
        );
        w.run();
        assert!(w.mpi.all_finished());
    }

    #[test]
    fn ingress_bursts_record_peak_volume() {
        let mut w = World::new();
        // Rank 0 posts 4 sends back-to-back before waiting: burst = 4 × 1 KiB.
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(0), NodeId(30)],
            vec![
                prog(vec![
                    MpiOp::Isend { dst: 1, bytes: 1024, tag: 1 },
                    MpiOp::Isend { dst: 1, bytes: 1024, tag: 2 },
                    MpiOp::Isend { dst: 1, bytes: 1024, tag: 3 },
                    MpiOp::Isend { dst: 1, bytes: 1024, tag: 4 },
                    MpiOp::WaitAll,
                ]),
                prog(vec![
                    MpiOp::Irecv { src: Some(0), tag: 1 },
                    MpiOp::Irecv { src: Some(0), tag: 2 },
                    MpiOp::Irecv { src: Some(0), tag: 3 },
                    MpiOp::Irecv { src: Some(0), tag: 4 },
                    MpiOp::WaitAll,
                ]),
            ],
            vec![],
        );
        w.run();
        assert_eq!(w.rec.app(AppId(0)).unwrap().max_ingress_burst, 4096);
    }

    #[test]
    fn self_send_through_loopback() {
        let mut w = World::new();
        w.mpi.add_app(
            AppId(0),
            vec![NodeId(3)],
            vec![prog(vec![
                MpiOp::Isend { dst: 0, bytes: 512, tag: 1 },
                MpiOp::Recv { src: Some(0), tag: 1 },
                MpiOp::WaitAll,
            ])],
            vec![],
        );
        w.run();
        assert!(w.mpi.all_finished());
    }
}
