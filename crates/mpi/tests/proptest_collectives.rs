//! Property tests on the collective engine driven end-to-end through a
//! real network: random communicator shapes and payloads must terminate
//! with exactly the algorithmically expected wire traffic.

use dfsim_des::queue::PendingEvents;
use dfsim_des::{EventQueue, Scheduler, SimRng, Time};
use dfsim_metrics::{AppId, Recorder, RecorderConfig};
use dfsim_mpi::{CommId, MpiEvent, MpiOp, MpiSim, RankProgram};
use dfsim_network::{NetEvent, NetworkSim, RoutingAlgo, RoutingConfig};
use dfsim_topology::{DragonflyParams, LinkTiming, NodeId, Topology};
use proptest::prelude::*;

enum WE {
    Net(NetEvent),
    Mpi(MpiEvent),
}

struct WS<'a> {
    q: &'a mut EventQueue<WE>,
}
impl Scheduler<NetEvent> for WS<'_> {
    fn now(&self) -> Time {
        self.q.now()
    }
    fn at(&mut self, t: Time, e: NetEvent) {
        self.q.push(t, WE::Net(e));
    }
}
impl Scheduler<MpiEvent> for WS<'_> {
    fn now(&self) -> Time {
        self.q.now()
    }
    fn at(&mut self, t: Time, e: MpiEvent) {
        self.q.push(t, WE::Mpi(e));
    }
}

/// Run a per-rank op list through the full MPI + network stack; returns
/// total wire bytes delivered.
fn run_ops(n: u32, seed: u64, ops: Vec<Vec<MpiOp>>) -> u64 {
    let topo = std::sync::Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
    let mut rec = Recorder::new(&topo, RecorderConfig::default());
    let mut net = NetworkSim::new(
        std::sync::Arc::clone(&topo),
        LinkTiming::default(),
        RoutingConfig::new(RoutingAlgo::UgalG),
        &SimRng::new(seed),
    );
    let mut mpi = MpiSim::default();
    let mut rng = SimRng::new(seed ^ 0xc0ffee);
    let mut nodes: Vec<NodeId> = (0..topo.num_nodes()).map(NodeId).collect();
    rng.shuffle(&mut nodes);
    nodes.truncate(n as usize);
    let programs: Vec<Box<dyn RankProgram>> =
        ops.into_iter().map(|o| Box::new(o.into_iter()) as Box<dyn RankProgram>).collect();
    mpi.add_app(AppId(0), nodes, programs, vec![]);
    let mut q: EventQueue<WE> = EventQueue::new();
    {
        let mut s = WS { q: &mut q };
        mpi.start(&mut s, &mut net, &mut rec);
    }
    let mut effects = Vec::new();
    let mut steps = 0u64;
    while let Some((_, ev)) = q.pop() {
        match ev {
            WE::Net(e) => {
                let mut s = WS { q: &mut q };
                net.handle(e, &mut s, &mut rec, &mut effects);
                for eff in effects.drain(..) {
                    let mut s = WS { q: &mut q };
                    mpi.on_net_effect(eff, &mut s, &mut net, &mut rec);
                }
            }
            WE::Mpi(e) => {
                let mut s = WS { q: &mut q };
                mpi.handle(e, &mut s, &mut net, &mut rec);
            }
        }
        steps += 1;
        assert!(steps < 50_000_000, "runaway");
    }
    assert!(mpi.all_finished(), "collective deadlocked");
    rec.app(AppId(0)).map(|a| a.delivered.total()).unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Alltoall moves exactly n·(n−1)·bytes on the wire and terminates.
    #[test]
    fn alltoall_wire_volume(n in 2u32..12, bytes in 1u64..10_000, seed in 0u64..500) {
        let ops: Vec<Vec<MpiOp>> =
            (0..n).map(|_| vec![MpiOp::AllToAll { comm: CommId::WORLD, bytes }]).collect();
        let wire = run_ops(n, seed, ops);
        prop_assert_eq!(wire, n as u64 * (n as u64 - 1) * bytes);
    }

    /// Allreduce moves exactly 2·(n−1)·bytes (tree up + down) plus, for
    /// rendezvous-sized payloads, one RTS + CTS control packet (2 × 64 B)
    /// per message.
    #[test]
    fn allreduce_wire_volume(n in 2u32..16, bytes in 1u64..100_000, seed in 0u64..500) {
        let ops: Vec<Vec<MpiOp>> =
            (0..n).map(|_| vec![MpiOp::AllReduce { comm: CommId::WORLD, bytes }]).collect();
        let wire = run_ops(n, seed, ops);
        let msgs = 2 * (n as u64 - 1);
        let ctrl = if bytes > 16 * 1024 { 128 } else { 0 };
        prop_assert_eq!(wire, msgs * (bytes + ctrl));
    }

    /// Reduce and Bcast each move (n−1)·(bytes + control), from/to any root.
    #[test]
    fn reduce_bcast_wire_volume(n in 2u32..12, root in 0u32..12, bytes in 1u64..50_000) {
        let root = root % n;
        let ctrl = if bytes > 16 * 1024 { 128 } else { 0 };
        let reduce: Vec<Vec<MpiOp>> =
            (0..n).map(|_| vec![MpiOp::Reduce { comm: CommId::WORLD, root, bytes }]).collect();
        prop_assert_eq!(run_ops(n, 1, reduce), (n as u64 - 1) * (bytes + ctrl));
        let bcast: Vec<Vec<MpiOp>> =
            (0..n).map(|_| vec![MpiOp::Bcast { comm: CommId::WORLD, root, bytes }]).collect();
        prop_assert_eq!(run_ops(n, 2, bcast), (n as u64 - 1) * (bytes + ctrl));
    }

    /// Back-to-back collectives on one communicator never cross-match.
    #[test]
    fn repeated_collectives_terminate(n in 2u32..10, reps in 1usize..5, seed in 0u64..200) {
        let ops: Vec<Vec<MpiOp>> = (0..n)
            .map(|_| {
                let mut v = Vec::new();
                for _ in 0..reps {
                    v.push(MpiOp::AllReduce { comm: CommId::WORLD, bytes: 2_000 });
                    v.push(MpiOp::Barrier { comm: CommId::WORLD });
                }
                v
            })
            .collect();
        let wire = run_ops(n, seed, ops);
        // Allreduce payloads + barrier control packets.
        let expected = reps as u64 * (2 * (n as u64 - 1) * 2_000 + 2 * (n as u64 - 1) * 64);
        prop_assert_eq!(wire, expected);
    }
}
