//! Convergence telemetry for Q-adaptive routing: the per-window mean of
//! `|ΔQ1|` over all level-1 Q-table updates.
//!
//! Every EWMA update moves a level-1 entry by `α·(sample − q)`; the mean
//! absolute step per time window is a direct convergence signal — large
//! while the tables are still learning the traffic, shrinking towards a
//! noise floor at steady state. The trace feeds the `learning` block of a
//! run report, and the `transfer` bench bin compares the *early* windows of
//! warm-started vs cold-started runs.

use dfsim_des::Time;

/// Binned accumulator of `|ΔQ1|` magnitudes (picoseconds, the Q-table
/// unit). Windows share the recorder's configured bin width.
#[derive(Debug, Clone)]
pub struct LearningTrace {
    bin_width: Time,
    /// Per-window `(sum |ΔQ1|, update count)`.
    bins: Vec<(f64, u64)>,
    total_abs: f64,
    updates: u64,
}

impl LearningTrace {
    /// Empty trace with windows of `bin_width` picoseconds.
    pub fn new(bin_width: Time) -> Self {
        Self { bin_width: bin_width.max(1), bins: Vec::new(), total_abs: 0.0, updates: 0 }
    }

    /// Record one level-1 update of magnitude `delta_ps` at time `t`.
    #[inline]
    pub fn record(&mut self, t: Time, delta_ps: f64) {
        let bin = (t / self.bin_width) as usize;
        if bin >= self.bins.len() {
            self.bins.resize(bin + 1, (0.0, 0));
        }
        let (sum, n) = &mut self.bins[bin];
        *sum += delta_ps;
        *n += 1;
        self.total_abs += delta_ps;
        self.updates += 1;
    }

    /// Total level-1 updates recorded.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.updates == 0
    }

    /// Mean `|ΔQ1|` over the whole run, picoseconds (0 if empty).
    pub fn mean_abs(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.total_abs / self.updates as f64
        }
    }

    /// Per-window series `(window start ps, mean |ΔQ1| ps)`; windows
    /// without updates are skipped. Early/late-window aggregation lives on
    /// the report side (`LearningReport::early_mean_ns`/`late_mean_ns` in
    /// `dfsim-core`), the single place that defines the windowing.
    pub fn series(&self) -> Vec<(Time, f64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, (_, n))| *n > 0)
            .map(|(i, (sum, n))| (i as Time * self.bin_width, sum / *n as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_bin_means_and_totals() {
        let mut t = LearningTrace::new(100);
        assert!(t.is_empty());
        t.record(0, 10.0);
        t.record(50, 30.0);
        t.record(250, 5.0);
        assert_eq!(t.updates(), 3);
        assert!((t.mean_abs() - 15.0).abs() < 1e-12);
        // Window 0 mean = 20, window 1 empty (skipped), window 2 mean = 5.
        assert_eq!(t.series(), vec![(0, 20.0), (200, 5.0)]);
    }

    #[test]
    fn zero_bin_width_is_clamped() {
        let mut t = LearningTrace::new(0);
        t.record(5, 1.0);
        assert_eq!(t.updates(), 1);
    }
}
