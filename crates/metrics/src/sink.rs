//! The streaming event bus: a subscriber ([`EventSink`]) observing every
//! [`crate::Recorder`] hook as it fires.
//!
//! The paper's §III "flexibly configured IO module" needs more than
//! end-of-run aggregates for long-horizon studies: a run producing 10⁵–10⁶
//! jobs cannot keep every packet latency in memory until the end, and a
//! run that crashes mid-way should still leave its observations behind. A
//! sink receives each metric event *as it is recorded* — the
//! [`crate::trace::TraceWriter`] streams them to a compact binary file with
//! bounded buffering — while the in-memory aggregates keep working exactly
//! as before.
//!
//! When no sink is attached (the default), every hook pays a single
//! `Option` discriminant test: the hot loop is unaffected.

use dfsim_des::Time;
use dfsim_topology::{Port, RouterId};

use crate::recorder::AppId;

/// One metric observation, mirroring the [`crate::Recorder`] hook that
/// produced it. The variants carry exactly the hook arguments, so a sink
/// that persists them loses nothing: replaying a stream of `TraceEvent`s
/// through a fresh recorder ([`crate::Recorder::replay_event`]) rebuilds
/// the recorder state the original run ended with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// [`crate::Recorder::packet_injected`].
    Injected {
        /// Application.
        app: AppId,
        /// Injection time.
        t: Time,
        /// Packet size, bytes.
        bytes: u32,
    },
    /// [`crate::Recorder::packet_delivered_full`] (`hops: Some`) or the
    /// hop-less convenience wrappers (`hops: None` — such deliveries carry
    /// no forwarding-path information and stay out of the hop statistics).
    Delivered {
        /// Application.
        app: AppId,
        /// Injection time.
        inject: Time,
        /// Delivery time.
        deliver: Time,
        /// Packet size, bytes.
        bytes: u32,
        /// Whether the packet travelled a non-minimal (Valiant) path.
        detoured: bool,
        /// Router-to-router hop count, when the caller knows it.
        hops: Option<u8>,
    },
    /// [`crate::Recorder::packet_forwarded`].
    Forwarded {
        /// Forwarding router.
        router: RouterId,
        /// Output port.
        port: Port,
        /// Link occupancy, ps.
        busy: Time,
        /// Packet size, bytes.
        bytes: u32,
    },
    /// [`crate::Recorder::port_stalled`].
    Stalled {
        /// Stalled router.
        router: RouterId,
        /// Stalled output port.
        port: Port,
        /// Head-of-line blocking duration, ps.
        dur: Time,
    },
    /// [`crate::Recorder::q1_updated`].
    Q1Updated {
        /// Update timestamp.
        t: Time,
        /// `|ΔQ1|` magnitude, ps.
        delta_ps: f64,
    },
    /// [`crate::Recorder::ingress_burst`].
    IngressBurst {
        /// Application.
        app: AppId,
        /// Burst volume, bytes.
        bytes: u64,
    },
    /// [`crate::Recorder::rank_finished`].
    RankFinished {
        /// Application.
        app: AppId,
        /// Rank within the application.
        rank: u32,
        /// Communication time, ps.
        comm: Time,
        /// Execution time, ps.
        exec: Time,
    },
}

/// A subscriber to the recorder's event stream.
///
/// Implementations must be cheap in [`EventSink::event`] — it is called
/// inline from the simulation hot loop (buffer, don't syscall). I/O errors
/// are deferred: buffering sinks remember the first failure and surface it
/// from [`EventSink::finish`].
pub trait EventSink: Send + std::fmt::Debug {
    /// Observe one event. Called synchronously from every recorder hook.
    fn event(&mut self, ev: &TraceEvent);

    /// Finalize the stream: flush everything buffered, append the opaque
    /// run-metadata blob (if any) and close the backing store. Returns the
    /// first error encountered over the sink's whole lifetime.
    fn finish(self: Box<Self>, meta: Option<&[u8]>) -> std::io::Result<()>;
}

/// An in-memory sink collecting every event — the trivial subscriber, used
/// by tests and by analyses small enough to not need a file. Clones share
/// the same storage, so a caller can keep one handle while the recorder
/// owns the other.
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    events: std::sync::Arc<std::sync::Mutex<Vec<TraceEvent>>>,
}

impl VecSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every event observed so far, in recording order.
    ///
    /// A poisoned lock recovers: the stored `Vec` is consistent at every
    /// release point, and a sink must never turn one panicked holder into
    /// a second panic.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

impl EventSink for VecSink {
    fn event(&mut self, ev: &TraceEvent) {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).push(*ev);
    }

    fn finish(self: Box<Self>, _meta: Option<&[u8]>) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vecsink_clones_share_storage() {
        let mut sink = VecSink::new();
        let handle = sink.clone();
        sink.event(&TraceEvent::Injected { app: AppId(1), t: 5, bytes: 64 });
        assert_eq!(handle.events().len(), 1);
    }

    /// Regression: `events()` used to `unwrap()` the mutex, so one
    /// panicked recorder thread made every later snapshot panic too —
    /// losing the very events a crash post-mortem needs. A poisoned lock
    /// must recover (the Vec is consistent at every release point).
    #[test]
    fn vecsink_snapshot_survives_a_poisoned_lock() {
        let mut sink = VecSink::new();
        sink.event(&TraceEvent::Injected { app: AppId(0), t: 1, bytes: 32 });
        let poisoner = sink.clone();
        std::panic::catch_unwind(move || {
            let _guard = poisoner.events.lock().unwrap();
            panic!("recorder thread dies mid-hook");
        })
        .unwrap_err();
        assert!(sink.events.is_poisoned(), "the panic must have poisoned the lock");
        assert_eq!(sink.events().len(), 1, "snapshot still serves the recorded events");
        sink.event(&TraceEvent::Injected { app: AppId(0), t: 2, bytes: 32 });
        assert_eq!(sink.events().len(), 2, "recording keeps working after recovery");
    }
}
