//! Scalar summary statistics used throughout the report tables.

use serde::{Deserialize, Serialize};

/// Mean / standard deviation / extrema of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum (0 when empty).
    pub min: f64,
    /// Maximum (0 when empty).
    pub max: f64,
}

impl Stats {
    /// Compute from a slice of samples.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Self::default();
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Self { n, mean, std: var.sqrt(), min, max }
    }

    /// Coefficient of variation in percent (`std/mean·100`), the paper's
    /// "communication time variation" measure; 0 when the mean is 0.
    pub fn variation_pct(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean * 100.0
        }
    }
}

/// Linear-interpolated quantile of a **sorted** slice (`q ∈ [0, 1]`).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant() {
        let s = Stats::of(&[5.0; 10]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.variation_pct(), 0.0);
    }

    #[test]
    fn stats_of_known_set() {
        let s = Stats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.variation_pct() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty() {
        let s = Stats::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 2.5);
        assert!((quantile_sorted(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile_sorted(&xs, -1.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 2.0), 2.0);
    }
}
