//! Per-port stall/busy/traffic accounting (Fig 11's "network stall time").
//!
//! A port *stalls* while a packet at the head of an input VC is ready to
//! depart but cannot (no downstream credit, or the output link is busy with
//! another packet). The network simulation reports those intervals here; the
//! Fig 11 harness aggregates local-link stall per group and global-link stall
//! per group pair.

use dfsim_topology::LinkKind;
use serde::{Deserialize, Serialize};

/// Accumulated counters for one directed router output port.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PortStats {
    /// Total time packets spent head-of-line blocked wanting this port, ps.
    pub stall_ps: u64,
    /// Total time the output link spent serializing packets, ps.
    pub busy_ps: u64,
    /// Bytes forwarded through this port.
    pub bytes: u64,
    /// Packets forwarded through this port.
    pub packets: u64,
}

/// Dense per-(router, port) stats table.
#[derive(Debug, Clone)]
pub struct PortTable {
    radix: usize,
    stats: Vec<PortStats>,
    kinds: Vec<LinkKind>,
}

impl PortTable {
    /// Table for `routers` routers of the given `radix`; `kind_of` classifies
    /// each port index.
    pub fn new(routers: usize, radix: usize, kind_of: impl Fn(u8) -> LinkKind) -> Self {
        let kinds: Vec<LinkKind> = (0..radix as u8).map(kind_of).collect();
        Self { radix, stats: vec![PortStats::default(); routers * radix], kinds }
    }

    #[inline]
    fn idx(&self, router: u32, port: u8) -> usize {
        router as usize * self.radix + port as usize
    }

    /// Add stall time to a port.
    #[inline]
    pub fn add_stall(&mut self, router: u32, port: u8, dur: u64) {
        let i = self.idx(router, port);
        self.stats[i].stall_ps += dur;
    }

    /// Add busy (serialization) time and traffic to a port.
    #[inline]
    pub fn add_forward(&mut self, router: u32, port: u8, busy: u64, bytes: u64) {
        let i = self.idx(router, port);
        let s = &mut self.stats[i];
        s.busy_ps += busy;
        s.bytes += bytes;
        s.packets += 1;
    }

    /// Stats of one port.
    #[inline]
    pub fn get(&self, router: u32, port: u8) -> &PortStats {
        &self.stats[self.idx(router, port)]
    }

    /// Kind of a port index.
    #[inline]
    pub fn kind(&self, port: u8) -> LinkKind {
        self.kinds[port as usize]
    }

    /// Iterate `(router, port, kind, stats)` over all ports.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u8, LinkKind, &PortStats)> {
        self.stats.iter().enumerate().map(move |(i, s)| {
            let router = (i / self.radix) as u32;
            let port = (i % self.radix) as u8;
            (router, port, self.kinds[port as usize], s)
        })
    }

    /// Elementwise sum of another table's counters (merging per-partition
    /// tables of one sharded run). Tables must describe the same fabric.
    pub fn merge(&mut self, other: &PortTable) {
        assert_eq!(self.radix, other.radix, "port table radix mismatch");
        assert_eq!(self.stats.len(), other.stats.len(), "port table size mismatch");
        for (a, b) in self.stats.iter_mut().zip(other.stats.iter()) {
            a.stall_ps += b.stall_ps;
            a.busy_ps += b.busy_ps;
            a.bytes += b.bytes;
            a.packets += b.packets;
        }
    }

    /// Sum of stall time over all ports of a kind, ps.
    pub fn total_stall(&self, kind: LinkKind) -> u64 {
        self.iter().filter(|&(_, _, k, _)| k == kind).map(|(_, _, _, s)| s.stall_ps).sum()
    }

    /// Sum of bytes over all ports of a kind.
    pub fn total_bytes(&self, kind: LinkKind) -> u64 {
        self.iter().filter(|&(_, _, k, _)| k == kind).map(|(_, _, _, s)| s.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind_of(p: u8) -> LinkKind {
        match p {
            0..=1 => LinkKind::Terminal,
            2..=4 => LinkKind::Local,
            _ => LinkKind::Global,
        }
    }

    #[test]
    fn accumulates_per_port() {
        let mut t = PortTable::new(3, 6, kind_of);
        t.add_stall(1, 2, 100);
        t.add_stall(1, 2, 50);
        t.add_forward(1, 2, 20, 512);
        t.add_forward(2, 5, 20, 512);
        assert_eq!(t.get(1, 2).stall_ps, 150);
        assert_eq!(t.get(1, 2).busy_ps, 20);
        assert_eq!(t.get(1, 2).bytes, 512);
        assert_eq!(t.get(1, 2).packets, 1);
        assert_eq!(t.get(0, 0).stall_ps, 0);
    }

    #[test]
    fn totals_by_kind() {
        let mut t = PortTable::new(2, 6, kind_of);
        t.add_stall(0, 0, 1); // terminal
        t.add_stall(0, 3, 10); // local
        t.add_stall(1, 5, 100); // global
        t.add_forward(1, 5, 5, 512);
        assert_eq!(t.total_stall(LinkKind::Terminal), 1);
        assert_eq!(t.total_stall(LinkKind::Local), 10);
        assert_eq!(t.total_stall(LinkKind::Global), 100);
        assert_eq!(t.total_bytes(LinkKind::Global), 512);
    }

    #[test]
    fn iter_visits_every_port() {
        let t = PortTable::new(4, 6, kind_of);
        assert_eq!(t.iter().count(), 24);
    }
}
