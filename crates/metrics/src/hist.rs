//! Latency sample pools and distribution summaries.
//!
//! Packet latencies are appended with their delivery timestamp so figures can
//! show both the distribution (Fig 6, Fig 13a: quartiles, p95, p99) and the
//! evolution along simulated time (Fig 7).

use serde::{Deserialize, Serialize};

use crate::summary::quantile_sorted;
use dfsim_des::Time;

/// A pool of `(timestamp, value)` samples, e.g. packet latencies keyed by
/// delivery time.
#[derive(Debug, Clone, Default)]
pub struct SamplePool {
    samples: Vec<(Time, u64)>,
}

/// Distribution summary in the shape the paper's box plots report.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencySummary {
    /// Sample count.
    pub n: usize,
    /// Mean value.
    pub mean: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl SamplePool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample observed at `t`.
    #[inline]
    pub fn record(&mut self, t: Time, value: u64) {
        self.samples.push((t, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Raw samples (timestamp, value).
    pub fn samples(&self) -> &[(Time, u64)] {
        &self.samples
    }

    /// Append every sample of `other` (merging per-partition pools; all
    /// summaries sort before aggregating, so concatenation order is
    /// immaterial to the reported numbers).
    pub fn extend_from(&mut self, other: &SamplePool) {
        self.samples.extend_from_slice(&other.samples);
    }

    /// Distribution summary over all samples.
    pub fn summarize(&self) -> LatencySummary {
        self.summarize_window(0, Time::MAX)
    }

    /// Distribution summary restricted to samples with `from ≤ t < to`.
    pub fn summarize_window(&self, from: Time, to: Time) -> LatencySummary {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|&&(t, _)| t >= from && t < to)
            .map(|&(_, v)| v as f64)
            .collect();
        summarize_values(vals)
    }

    /// Time-bucketed means (for latency-vs-time plots like Fig 7): returns
    /// `(bin_start, mean)` for every non-empty bin of width `bin`.
    pub fn binned_mean(&self, bin: Time) -> Vec<(Time, f64)> {
        assert!(bin > 0);
        let mut acc: std::collections::BTreeMap<Time, (u64, u64)> = Default::default();
        for &(t, v) in &self.samples {
            let e = acc.entry(t / bin * bin).or_insert((0, 0));
            e.0 += v;
            e.1 += 1;
        }
        acc.into_iter().map(|(t, (sum, n))| (t, sum as f64 / n as f64)).collect()
    }
}

/// Distribution summary over the concatenation of several borrowed sample
/// slices, in slice order — the zero-copy equivalent of pushing every slice
/// into one fresh [`SamplePool`] and summarizing it. The values are collected
/// in the same order a concatenated pool would hold them and the mean sums
/// the sorted values, so the result is bit-identical to the copying form.
pub fn summarize_slices(parts: &[&[(Time, u64)]]) -> LatencySummary {
    let vals: Vec<f64> = parts.iter().flat_map(|s| s.iter()).map(|&(_, v)| v as f64).collect();
    summarize_values(vals)
}

/// Shared summary kernel: sort, take quantiles, mean over the sorted order.
fn summarize_values(mut vals: Vec<f64>) -> LatencySummary {
    if vals.is_empty() {
        return LatencySummary::default();
    }
    vals.sort_by(f64::total_cmp);
    let n = vals.len();
    LatencySummary {
        n,
        mean: vals.iter().sum::<f64>() / n as f64,
        q1: quantile_sorted(&vals, 0.25),
        median: quantile_sorted(&vals, 0.50),
        q3: quantile_sorted(&vals, 0.75),
        p95: quantile_sorted(&vals, 0.95),
        p99: quantile_sorted(&vals, 0.99),
        max: vals[n - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_uniform_ramp() {
        let mut p = SamplePool::new();
        for v in 1..=100u64 {
            p.record(v, v);
        }
        let s = p.summarize();
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!((s.p95 - 95.05).abs() < 0.2);
        assert!((s.p99 - 99.01).abs() < 0.2);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn window_filters_by_timestamp() {
        let mut p = SamplePool::new();
        p.record(10, 1);
        p.record(20, 100);
        p.record(30, 1000);
        let s = p.summarize_window(15, 25);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 100.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let p = SamplePool::new();
        assert_eq!(p.summarize(), LatencySummary::default());
    }

    #[test]
    fn summarize_slices_matches_concatenated_pool_bitwise() {
        let mut a = SamplePool::new();
        let mut b = SamplePool::new();
        for v in [7u64, 3, 900, 41, 12] {
            a.record(v, v * 13 + 1);
        }
        for v in [5u64, 88, 2] {
            b.record(v, v * 7 + 3);
        }
        let mut concat = SamplePool::new();
        concat.extend_from(&a);
        concat.extend_from(&b);
        let want = concat.summarize();
        let got = summarize_slices(&[a.samples(), b.samples()]);
        for (x, y) in [
            (want.mean, got.mean),
            (want.q1, got.q1),
            (want.median, got.median),
            (want.q3, got.q3),
            (want.p95, got.p95),
            (want.p99, got.p99),
            (want.max, got.max),
        ] {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(want.n, got.n);
    }

    #[test]
    fn binned_mean_buckets() {
        let mut p = SamplePool::new();
        p.record(0, 10);
        p.record(5, 20);
        p.record(10, 30);
        let bins = p.binned_mean(10);
        assert_eq!(bins, vec![(0, 15.0), (10, 30.0)]);
    }
}
