//! The congestion-index matrix of Fig 12.
//!
//! The paper adapts a "congestion index" — the ratio between average link
//! throughput and maximum link capacity — and plots a `g × g` heat map:
//! entry `(i, j)`, `i ≠ j`, is the index of the directed global link from
//! group `i` to group `j`; the diagonal `(i, i)` is the average over group
//! `i`'s directed local links.

use dfsim_des::Time;
use serde::{Deserialize, Serialize};

/// Byte counters per group pair, convertible into congestion indices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CongestionMatrix {
    groups: usize,
    /// Directed global-link bytes, `bytes[i * groups + j]`.
    global_bytes: Vec<u64>,
    /// Local-link bytes accumulated per group.
    local_bytes: Vec<u64>,
    /// Number of directed local links per group (`a·(a−1)`).
    local_links_per_group: u64,
}

impl CongestionMatrix {
    /// Matrix for `groups` groups with `routers_per_group` routers each.
    pub fn new(groups: usize, routers_per_group: u64) -> Self {
        Self {
            groups,
            global_bytes: vec![0; groups * groups],
            local_bytes: vec![0; groups],
            local_links_per_group: routers_per_group * (routers_per_group - 1),
        }
    }

    /// Record traffic on the directed global link `src → dst`.
    #[inline]
    pub fn add_global(&mut self, src: usize, dst: usize, bytes: u64) {
        debug_assert_ne!(src, dst);
        self.global_bytes[src * self.groups + dst] += bytes;
    }

    /// Record traffic on any local link within `group`.
    #[inline]
    pub fn add_local(&mut self, group: usize, bytes: u64) {
        self.local_bytes[group] += bytes;
    }

    /// Bytes on the directed global link `src → dst`.
    pub fn global(&self, src: usize, dst: usize) -> u64 {
        self.global_bytes[src * self.groups + dst]
    }

    /// Local bytes in a group.
    pub fn local(&self, group: usize) -> u64 {
        self.local_bytes[group]
    }

    /// The full index matrix for a run of `elapsed` ps on links of
    /// `bandwidth_gbps`: entry `(i,j)` ∈ [0, 1] with the diagonal holding the
    /// per-group local-link average.
    pub fn index_matrix(&self, elapsed: Time, bandwidth_gbps: u64) -> Vec<Vec<f64>> {
        let cap = capacity_bytes(elapsed, bandwidth_gbps);
        (0..self.groups)
            .map(|i| {
                (0..self.groups)
                    .map(|j| {
                        if i == j {
                            let per_link = self.local_bytes[i] as f64
                                / self.local_links_per_group.max(1) as f64;
                            (per_link / cap).min(1.0)
                        } else {
                            (self.global(i, j) as f64 / cap).min(1.0)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Mean off-diagonal (global) congestion index. Each per-link index is
    /// clamped to 1 exactly as [`CongestionMatrix::index_matrix`] clamps its
    /// entries, so the scalar can never exceed every entry of the matrix it
    /// summarizes.
    pub fn mean_global_index(&self, elapsed: Time, bandwidth_gbps: u64) -> f64 {
        let cap = capacity_bytes(elapsed, bandwidth_gbps);
        let g = self.groups;
        if g < 2 {
            return 0.0;
        }
        let sum: f64 = (0..g)
            .flat_map(|i| (0..g).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| (self.global(i, j) as f64 / cap).min(1.0))
            .sum();
        sum / (g * (g - 1)) as f64
    }

    /// Population std-dev of the off-diagonal indices — the imbalance measure
    /// behind the paper's "hot spot" observation. Clamped per link like
    /// [`CongestionMatrix::index_matrix`].
    pub fn std_global_index(&self, elapsed: Time, bandwidth_gbps: u64) -> f64 {
        let cap = capacity_bytes(elapsed, bandwidth_gbps);
        let g = self.groups;
        if g < 2 {
            return 0.0;
        }
        let vals: Vec<f64> = (0..g)
            .flat_map(|i| (0..g).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| (self.global(i, j) as f64 / cap).min(1.0))
            .collect();
        crate::summary::Stats::of(&vals).std
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Elementwise sum of another matrix's byte counters (merging
    /// per-partition matrices of one sharded run).
    pub fn merge(&mut self, other: &CongestionMatrix) {
        assert_eq!(self.groups, other.groups, "congestion matrix size mismatch");
        for (a, b) in self.global_bytes.iter_mut().zip(other.global_bytes.iter()) {
            *a += *b;
        }
        for (a, b) in self.local_bytes.iter_mut().zip(other.local_bytes.iter()) {
            *a += *b;
        }
    }
}

/// Bytes a single link can move in `elapsed` ps.
fn capacity_bytes(elapsed: Time, bandwidth_gbps: u64) -> f64 {
    (bandwidth_gbps as f64 / 8.0) * (elapsed as f64 / 1000.0) // Gb/s → B/ns, ps → ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_des::MILLISECOND;

    #[test]
    fn capacity_math() {
        // 200 Gb/s for 1 ms = 25 MB.
        assert!((capacity_bytes(MILLISECOND, 200) - 25_000_000.0).abs() < 1.0);
    }

    #[test]
    fn fully_loaded_link_has_index_one() {
        let mut m = CongestionMatrix::new(3, 4);
        m.add_global(0, 1, 25_000_000);
        let idx = m.index_matrix(MILLISECOND, 200);
        assert!((idx[0][1] - 1.0).abs() < 1e-9);
        assert_eq!(idx[1][0], 0.0);
    }

    #[test]
    fn diagonal_averages_local_links() {
        let mut m = CongestionMatrix::new(2, 4); // 12 directed local links
        m.add_local(0, 12 * 25_000_000); // each local link fully loaded for 1 ms
        let idx = m.index_matrix(MILLISECOND, 200);
        assert!((idx[0][0] - 1.0).abs() < 1e-9);
        assert_eq!(idx[1][1], 0.0);
    }

    #[test]
    fn index_is_clamped_to_one() {
        let mut m = CongestionMatrix::new(2, 2);
        m.add_global(0, 1, u64::MAX / 4);
        let idx = m.index_matrix(1, 200);
        assert_eq!(idx[0][1], 1.0);
    }

    #[test]
    fn mean_and_std_clamp_like_the_matrix() {
        // One link driven 10x past capacity: every per-link index feeding the
        // scalar mean/std must clamp at 1.0 exactly like the matrix entries,
        // so the mean can never exceed the largest reported matrix entry.
        let mut m = CongestionMatrix::new(2, 2);
        m.add_global(0, 1, 250_000_000); // 10x the 25 MB/ms capacity
        let idx = m.index_matrix(MILLISECOND, 200);
        assert_eq!(idx[0][1], 1.0);

        let mean = m.mean_global_index(MILLISECOND, 200);
        // 2 off-diagonal entries, one clamped to 1.0: mean = 0.5 (an
        // unclamped index would report 5.0 — larger than every entry).
        assert!((mean - 0.5).abs() < 1e-12, "mean {mean} must use clamped indices");
        let max_entry = idx.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        assert!(mean <= max_entry, "scalar mean {mean} exceeds every matrix entry {max_entry}");

        // std of {1.0, 0.0} is 0.5; unclamped it would be 2.5.
        let std = m.std_global_index(MILLISECOND, 200);
        assert!((std - 0.5).abs() < 1e-12, "std {std} must use clamped indices");
    }

    #[test]
    fn mean_and_std_of_balanced_traffic() {
        let mut m = CongestionMatrix::new(3, 2);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    m.add_global(i, j, 1_000_000);
                }
            }
        }
        let std = m.std_global_index(MILLISECOND, 200);
        assert!(std < 1e-12, "balanced traffic must have zero imbalance, got {std}");
        assert!(m.mean_global_index(MILLISECOND, 200) > 0.0);
    }
}
