//! The [`Recorder`]: the single sink every simulation component reports into.
//!
//! The network simulation reports packet injections/deliveries, per-port
//! stalls and forwards; the MPI layer reports per-rank communication time and
//! ingress bursts. The experiment harness then reads the aggregates to build
//! the paper's tables and figures. All recording paths are branch-light and
//! allocation-free after warm-up, so instrumentation does not distort the
//! simulation hot loop.

use std::sync::Arc;

use dfsim_des::{Time, MILLISECOND};
use dfsim_topology::{LinkKind, Port, RouterId, Topology};
use serde::{Deserialize, Serialize};

use crate::congestion::CongestionMatrix;
use crate::hist::SamplePool;
use crate::learning::LearningTrace;
use crate::series::BinSeries;
use crate::stall::PortTable;

/// Identifies one application (job) within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u16);

impl AppId {
    /// Raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Recorder configuration: what to collect and at which granularity —
/// the "flexibly configured IO module" of paper §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Time-series bin width (default 0.1 ms, matching the paper's plots).
    pub bin_width: Time,
    /// Record every packet latency sample (needed by Figs 6, 7, 13a).
    pub record_latencies: bool,
    /// Record per-port stall/forward counters (needed by Figs 11, 12).
    pub record_ports: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self { bin_width: MILLISECOND / 10, record_latencies: true, record_ports: true }
    }
}

/// Per-application aggregates.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Bytes handed to NICs over time.
    pub injected: BinSeries,
    /// Bytes delivered to destination nodes over time.
    pub delivered: BinSeries,
    /// Packet latency samples `(deliver time, latency ps)`.
    pub latencies: SamplePool,
    /// Packets injected.
    pub packets_injected: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Delivered packets that took a non-minimal (Valiant) path.
    pub packets_detoured: u64,
    /// Histogram of router-to-router hops per delivered packet (index =
    /// hop count, saturating at the last bucket).
    pub hops_histogram: [u64; 9],
    /// Sum of hops over delivered packets (for the mean).
    pub hops_total: u64,
    /// Largest single ingress burst a rank posted (peak ingress volume), B.
    pub max_ingress_burst: u64,
    /// Per-rank `(rank, comm time ps, exec time ps)` records.
    pub rank_comm: Vec<(u32, Time, Time)>,
}

impl AppRecord {
    fn new(bin_width: Time) -> Self {
        Self {
            injected: BinSeries::new(bin_width),
            delivered: BinSeries::new(bin_width),
            latencies: SamplePool::new(),
            packets_injected: 0,
            packets_delivered: 0,
            packets_detoured: 0,
            hops_histogram: [0; 9],
            hops_total: 0,
            max_ingress_burst: 0,
            rank_comm: Vec::new(),
        }
    }
}

/// The metrics sink (see module docs).
#[derive(Debug)]
pub struct Recorder {
    cfg: RecorderConfig,
    topo: Arc<Topology>,
    apps: Vec<AppRecord>,
    ports: PortTable,
    congestion: CongestionMatrix,
    learning: LearningTrace,
}

impl Recorder {
    /// Build a recorder for a topology. The topology is shared by
    /// reference counting with the network and the runner — no per-run
    /// deep copy of the wiring tables.
    pub fn new(topo: &Arc<Topology>, cfg: RecorderConfig) -> Self {
        let radix = topo.radix() as usize;
        let routers = topo.num_routers() as usize;
        let kinds = {
            let t = Arc::clone(topo);
            move |p: u8| t.port_kind(Port(p))
        };
        Self {
            cfg,
            topo: Arc::clone(topo),
            apps: Vec::new(),
            ports: PortTable::new(routers, radix, kinds),
            congestion: CongestionMatrix::new(
                topo.num_groups() as usize,
                topo.params().routers_per_group as u64,
            ),
            learning: LearningTrace::new(cfg.bin_width),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    #[inline]
    fn app_mut(&mut self, app: AppId) -> &mut AppRecord {
        let idx = app.idx();
        while self.apps.len() <= idx {
            self.apps.push(AppRecord::new(self.cfg.bin_width));
        }
        &mut self.apps[idx]
    }

    // ---- network-side hooks ----------------------------------------------

    /// A packet of `bytes` entered the network at `t`.
    #[inline]
    pub fn packet_injected(&mut self, app: AppId, t: Time, bytes: u32) {
        let a = self.app_mut(app);
        a.injected.add(t, bytes as u64);
        a.packets_injected += 1;
    }

    /// A packet injected at `inject` was delivered at `deliver`. `detoured`
    /// marks packets that travelled a non-minimal path.
    #[inline]
    pub fn packet_delivered(&mut self, app: AppId, inject: Time, deliver: Time, bytes: u32) {
        self.packet_delivered_routed(app, inject, deliver, bytes, false)
    }

    /// [`Recorder::packet_delivered`] with the non-minimal-path flag and
    /// the traversed router-to-router hop count.
    #[inline]
    pub fn packet_delivered_routed(
        &mut self,
        app: AppId,
        inject: Time,
        deliver: Time,
        bytes: u32,
        detoured: bool,
    ) {
        self.packet_delivered_full(app, inject, deliver, bytes, detoured, 0)
    }

    /// Full delivery record: detour flag plus hop count (the per-packet
    /// "forwarding path" detail of the paper's IO module, aggregated).
    #[inline]
    pub fn packet_delivered_full(
        &mut self,
        app: AppId,
        inject: Time,
        deliver: Time,
        bytes: u32,
        detoured: bool,
        hops: u8,
    ) {
        let record_lat = self.cfg.record_latencies;
        let a = self.app_mut(app);
        a.delivered.add(deliver, bytes as u64);
        a.packets_delivered += 1;
        if detoured {
            a.packets_detoured += 1;
        }
        let bucket = (hops as usize).min(a.hops_histogram.len() - 1);
        a.hops_histogram[bucket] += 1;
        a.hops_total += hops as u64;
        if record_lat {
            a.latencies.record(deliver, deliver.saturating_sub(inject));
        }
    }

    /// A level-1 Q-table entry moved by `|delta_ps|` at time `t` (Q-adaptive
    /// convergence telemetry; see [`LearningTrace`]).
    #[inline]
    pub fn q1_updated(&mut self, t: Time, delta_ps: f64) {
        self.learning.record(t, delta_ps);
    }

    /// A packet at `(router, port)` was head-of-line blocked for `dur` ps.
    #[inline]
    pub fn port_stalled(&mut self, router: RouterId, port: Port, dur: Time) {
        if self.cfg.record_ports {
            self.ports.add_stall(router.0, port.0, dur);
        }
    }

    /// A packet of `bytes` was forwarded out of `(router, port)`, occupying
    /// the link for `busy` ps.
    #[inline]
    pub fn packet_forwarded(&mut self, router: RouterId, port: Port, busy: Time, bytes: u32) {
        if !self.cfg.record_ports {
            return;
        }
        self.ports.add_forward(router.0, port.0, busy, bytes as u64);
        match self.topo.port_kind(port) {
            LinkKind::Local => {
                let g = self.topo.group_of_router(router);
                self.congestion.add_local(g.idx(), bytes as u64);
            }
            LinkKind::Global => {
                if let Some(dst) = self.topo.global_port_target(router, port) {
                    let src = self.topo.group_of_router(router);
                    self.congestion.add_global(src.idx(), dst.idx(), bytes as u64);
                }
            }
            LinkKind::Terminal => {}
        }
    }

    // ---- MPI-side hooks ----------------------------------------------------

    /// A rank posted `bytes` of consecutive messages in one burst; tracks the
    /// application's peak ingress volume (paper §IV).
    #[inline]
    pub fn ingress_burst(&mut self, app: AppId, bytes: u64) {
        let a = self.app_mut(app);
        if bytes > a.max_ingress_burst {
            a.max_ingress_burst = bytes;
        }
    }

    /// Final per-rank communication/execution times.
    pub fn rank_finished(&mut self, app: AppId, rank: u32, comm: Time, exec: Time) {
        self.app_mut(app).rank_comm.push((rank, comm, exec));
    }

    // ---- read side ---------------------------------------------------------

    /// Per-app aggregates (index = app id); apps never touched are absent.
    pub fn apps(&self) -> &[AppRecord] {
        &self.apps
    }

    /// Aggregates for one app, if it recorded anything.
    pub fn app(&self, app: AppId) -> Option<&AppRecord> {
        self.apps.get(app.idx())
    }

    /// The per-port counter table.
    pub fn ports(&self) -> &PortTable {
        &self.ports
    }

    /// The congestion byte matrix.
    pub fn congestion(&self) -> &CongestionMatrix {
        &self.congestion
    }

    /// The Q-adaptive convergence trace (empty unless the run used
    /// Q-adaptive routing).
    pub fn learning(&self) -> &LearningTrace {
        &self.learning
    }

    /// System-wide delivered-bytes series (sum over apps).
    pub fn system_delivered(&self) -> BinSeries {
        let mut out = BinSeries::new(self.cfg.bin_width);
        for a in &self.apps {
            out.merge(&a.delivered);
        }
        out
    }

    /// System-wide latency summary (all apps pooled).
    pub fn system_latency(&self) -> crate::hist::LatencySummary {
        let mut pool = SamplePool::new();
        for a in &self.apps {
            for &(t, v) in a.latencies.samples() {
                pool.record(t, v);
            }
        }
        pool.summarize()
    }

    /// Sanity invariant: packets delivered never exceed packets injected.
    pub fn conservation_ok(&self) -> bool {
        self.apps.iter().all(|a| a.packets_delivered <= a.packets_injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_topology::DragonflyParams;

    fn rec() -> Recorder {
        let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        Recorder::new(&topo, RecorderConfig::default())
    }

    #[test]
    fn packet_lifecycle_updates_app_counters() {
        let mut r = rec();
        let app = AppId(0);
        r.packet_injected(app, 1_000, 512);
        r.packet_delivered(app, 1_000, 5_000, 512);
        let a = r.app(app).unwrap();
        assert_eq!(a.packets_injected, 1);
        assert_eq!(a.packets_delivered, 1);
        assert_eq!(a.injected.total(), 512);
        assert_eq!(a.delivered.total(), 512);
        assert_eq!(a.latencies.samples(), &[(5_000, 4_000)]);
        assert!(r.conservation_ok());
    }

    #[test]
    fn latency_recording_can_be_disabled() {
        let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        let mut r =
            Recorder::new(&topo, RecorderConfig { record_latencies: false, ..Default::default() });
        r.packet_delivered(AppId(0), 0, 10, 512);
        assert!(r.app(AppId(0)).unwrap().latencies.is_empty());
    }

    #[test]
    fn forwards_feed_congestion_matrix() {
        let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        let mut r = Recorder::new(&topo, RecorderConfig::default());
        // Router 0, group 0. Port 2 is the first local port (p=2);
        // global ports start at 2 + 3 = 5.
        r.packet_forwarded(RouterId(0), Port(2), 20_480, 512);
        let gw = topo.gateway(dfsim_topology::GroupId(0), dfsim_topology::GroupId(1)).unwrap();
        r.packet_forwarded(gw.0, gw.1, 20_480, 512);
        assert_eq!(r.congestion().local(0), 512);
        assert_eq!(r.congestion().global(0, 1), 512);
        assert_eq!(r.ports().total_bytes(LinkKind::Local), 512);
        assert_eq!(r.ports().total_bytes(LinkKind::Global), 512);
    }

    #[test]
    fn ingress_burst_keeps_max() {
        let mut r = rec();
        r.ingress_burst(AppId(1), 100);
        r.ingress_burst(AppId(1), 50);
        r.ingress_burst(AppId(1), 300);
        assert_eq!(r.app(AppId(1)).unwrap().max_ingress_burst, 300);
        // App 0 slot exists (dense vec) but recorded nothing.
        assert_eq!(r.app(AppId(0)).unwrap().max_ingress_burst, 0);
    }

    #[test]
    fn system_series_sums_apps() {
        let mut r = rec();
        r.packet_delivered(AppId(0), 0, 10, 100);
        r.packet_delivered(AppId(1), 0, 10, 200);
        assert_eq!(r.system_delivered().total(), 300);
        assert_eq!(r.system_latency().n, 2);
    }

    #[test]
    fn hop_histogram_accumulates() {
        let mut r = rec();
        r.packet_delivered_full(AppId(0), 0, 10, 512, false, 3);
        r.packet_delivered_full(AppId(0), 0, 20, 512, true, 6);
        r.packet_delivered_full(AppId(0), 0, 30, 512, false, 200); // saturates
        let a = r.app(AppId(0)).unwrap();
        assert_eq!(a.hops_histogram[3], 1);
        assert_eq!(a.hops_histogram[6], 1);
        assert_eq!(a.hops_histogram[8], 1);
        assert_eq!(a.hops_total, 3 + 6 + 200);
        assert_eq!(a.packets_detoured, 1);
    }

    #[test]
    fn rank_comm_records() {
        let mut r = rec();
        r.rank_finished(AppId(0), 3, 1_000, 2_000);
        assert_eq!(r.app(AppId(0)).unwrap().rank_comm, vec![(3, 1_000, 2_000)]);
    }
}
