//! The [`Recorder`]: the single sink every simulation component reports into.
//!
//! The network simulation reports packet injections/deliveries, per-port
//! stalls and forwards; the MPI layer reports per-rank communication time and
//! ingress bursts. The experiment harness then reads the aggregates to build
//! the paper's tables and figures. All recording paths are branch-light and
//! allocation-free after warm-up, so instrumentation does not distort the
//! simulation hot loop.

use std::sync::Arc;

use dfsim_des::{Time, MILLISECOND};
use dfsim_topology::{LinkKind, Port, RouterId, Topology};
use serde::{Deserialize, Serialize};

use crate::congestion::CongestionMatrix;
use crate::hist::SamplePool;
use crate::learning::LearningTrace;
use crate::series::BinSeries;
use crate::sink::{EventSink, TraceEvent};
use crate::stall::PortTable;

/// Identifies one application (job) within a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u16);

impl AppId {
    /// Raw index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for AppId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// Recorder configuration: what to collect and at which granularity —
/// the "flexibly configured IO module" of paper §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecorderConfig {
    /// Time-series bin width (default 0.1 ms, matching the paper's plots).
    pub bin_width: Time,
    /// Record every packet latency sample (needed by Figs 6, 7, 13a).
    pub record_latencies: bool,
    /// Record per-port stall/forward counters (needed by Figs 11, 12).
    pub record_ports: bool,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self { bin_width: MILLISECOND / 10, record_latencies: true, record_ports: true }
    }
}

/// Per-application aggregates.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Bytes handed to NICs over time.
    pub injected: BinSeries,
    /// Bytes delivered to destination nodes over time.
    pub delivered: BinSeries,
    /// Packet latency samples `(deliver time, latency ps)`.
    pub latencies: SamplePool,
    /// Packets injected.
    pub packets_injected: u64,
    /// Packets delivered.
    pub packets_delivered: u64,
    /// Delivered packets that took a non-minimal (Valiant) path.
    pub packets_detoured: u64,
    /// Histogram of router-to-router hops per delivered packet (index =
    /// hop count, saturating at the last bucket).
    pub hops_histogram: [u64; 9],
    /// Sum of hops over delivered packets (for the mean).
    pub hops_total: u64,
    /// Largest single ingress burst a rank posted (peak ingress volume), B.
    pub max_ingress_burst: u64,
    /// Per-rank `(rank, comm time ps, exec time ps)` records.
    pub rank_comm: Vec<(u32, Time, Time)>,
}

impl AppRecord {
    fn new(bin_width: Time) -> Self {
        Self {
            injected: BinSeries::new(bin_width),
            delivered: BinSeries::new(bin_width),
            latencies: SamplePool::new(),
            packets_injected: 0,
            packets_delivered: 0,
            packets_detoured: 0,
            hops_histogram: [0; 9],
            hops_total: 0,
            max_ingress_burst: 0,
            rank_comm: Vec::new(),
        }
    }
}

/// One order-sensitive metric event captured under keyed capture (see
/// [`Recorder::enable_keyed_capture`]). `(time, seq)` is the key of the
/// simulation event that produced it; a partitioned run merges the journals
/// of all partitions, sorts by key, and replays them into one recorder so
/// the order-sensitive aggregates match a single-threaded run bit for bit.
#[derive(Debug, Clone, PartialEq)]
pub struct KeyedEntry {
    /// Event time of the producing simulation event.
    pub time: Time,
    /// Queue sequence number of the producing simulation event.
    pub seq: u64,
    /// What was recorded.
    pub kind: KeyedKind,
}

/// Payload of a [`KeyedEntry`].
#[derive(Debug, Clone, PartialEq)]
pub enum KeyedKind {
    /// A [`Recorder::q1_updated`] call (floating-point bin sums depend on
    /// accumulation order).
    Q1Update {
        /// Update timestamp.
        t: Time,
        /// `|ΔQ1|` magnitude, ps.
        delta_ps: f64,
    },
    /// A [`Recorder::rank_finished`] call (`rank_comm` keeps push order).
    RankFinished {
        /// Application.
        app: AppId,
        /// Rank within the application.
        rank: u32,
        /// Communication time, ps.
        comm: Time,
        /// Execution time, ps.
        exec: Time,
    },
}

/// The metrics sink (see module docs).
#[derive(Debug)]
pub struct Recorder {
    cfg: RecorderConfig,
    topo: Arc<Topology>,
    apps: Vec<AppRecord>,
    ports: PortTable,
    congestion: CongestionMatrix,
    learning: LearningTrace,
    /// When `Some`, order-sensitive hooks divert into this journal instead
    /// of updating `learning`/`rank_comm` directly.
    keyed: Option<Vec<KeyedEntry>>,
    /// Key of the simulation event currently being processed.
    key: (Time, u64),
    /// Optional streaming subscriber; every hook forwards its event here
    /// after updating the aggregates. `None` (the default) costs one
    /// discriminant test per hook.
    sink: Option<Box<dyn EventSink>>,
}

impl Recorder {
    /// Build a recorder for a topology. The topology is shared by
    /// reference counting with the network and the runner — no per-run
    /// deep copy of the wiring tables.
    pub fn new(topo: &Arc<Topology>, cfg: RecorderConfig) -> Self {
        let radix = topo.radix() as usize;
        let routers = topo.num_routers() as usize;
        let kinds = {
            let t = Arc::clone(topo);
            move |p: u8| t.port_kind(Port(p))
        };
        Self {
            cfg,
            topo: Arc::clone(topo),
            apps: Vec::new(),
            ports: PortTable::new(routers, radix, kinds),
            congestion: CongestionMatrix::new(
                topo.num_groups() as usize,
                topo.params().routers_per_group as u64,
            ),
            learning: LearningTrace::new(cfg.bin_width),
            keyed: None,
            key: (0, 0),
            sink: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    // ---- streaming sink ---------------------------------------------------

    /// Attach a streaming subscriber. Every subsequent hook call forwards
    /// its [`TraceEvent`] to the sink after updating the in-memory
    /// aggregates. Replaces any previously attached sink.
    pub fn set_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sink = Some(sink);
    }

    /// Detach and return the sink so the caller can
    /// [`EventSink::finish`] it (flush + close).
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }

    #[inline]
    fn emit(&mut self, ev: TraceEvent) {
        if let Some(s) = &mut self.sink {
            s.event(&ev);
        }
    }

    /// Apply one previously-recorded [`TraceEvent`] through the normal
    /// recording paths — the replay half of the trace losslessness
    /// contract: feeding a fresh recorder the exact event stream a run
    /// produced rebuilds the aggregate state that run ended with.
    pub fn replay_event(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Injected { app, t, bytes } => self.packet_injected(app, t, bytes),
            TraceEvent::Delivered { app, inject, deliver, bytes, detoured, hops } => {
                self.deliver(app, inject, deliver, bytes, detoured, hops)
            }
            TraceEvent::Forwarded { router, port, busy, bytes } => {
                self.packet_forwarded(router, port, busy, bytes)
            }
            TraceEvent::Stalled { router, port, dur } => self.port_stalled(router, port, dur),
            TraceEvent::Q1Updated { t, delta_ps } => self.q1_updated(t, delta_ps),
            TraceEvent::IngressBurst { app, bytes } => self.ingress_burst(app, bytes),
            TraceEvent::RankFinished { app, rank, comm, exec } => {
                self.rank_finished(app, rank, comm, exec)
            }
        }
    }

    // ---- partitioned-run support ------------------------------------------

    /// Divert order-sensitive hooks ([`Recorder::q1_updated`],
    /// [`Recorder::rank_finished`]) into a keyed journal instead of the
    /// live aggregates. Partition workers enable this so the driver can
    /// merge all journals in global `(time, seq)` order and replay them
    /// through [`Recorder::replay_keyed`] deterministically.
    pub fn enable_keyed_capture(&mut self) {
        self.keyed = Some(Vec::new());
    }

    /// Set the `(time, seq)` key stamped on subsequent keyed entries — the
    /// key of the simulation event about to be processed.
    #[inline]
    pub fn set_key(&mut self, time: Time, seq: u64) {
        self.key = (time, seq);
    }

    /// Take the journal accumulated since the last drain (empty when keyed
    /// capture was never enabled). Capture stays enabled.
    pub fn drain_keyed(&mut self) -> Vec<KeyedEntry> {
        self.keyed.as_mut().map(std::mem::take).unwrap_or_default()
    }

    /// Stop diverting into the keyed journal, discarding anything not yet
    /// drained. The partition driver calls this on the recorder it elected
    /// as the merge base before replaying the combined journals into it.
    pub fn disable_keyed_capture(&mut self) {
        self.keyed = None;
    }

    /// Apply journal entries through the normal recording paths. Callers
    /// pass the merged journals of all partitions, sorted by `(time, seq)`,
    /// into a recorder *without* keyed capture enabled.
    pub fn replay_keyed(&mut self, entries: impl IntoIterator<Item = KeyedEntry>) {
        debug_assert!(self.keyed.is_none(), "replaying into a capturing recorder loops");
        for e in entries {
            match e.kind {
                KeyedKind::Q1Update { t, delta_ps } => self.learning.record(t, delta_ps),
                KeyedKind::RankFinished { app, rank, comm, exec } => {
                    self.app_mut(app).rank_comm.push((rank, comm, exec));
                }
            }
        }
    }

    /// Fold another partition's recorder into this one. Merges everything
    /// whose aggregation is order-insensitive (counters, binned series,
    /// sample pools, port/congestion tables); the order-sensitive state
    /// (`learning`, `rank_comm`) must arrive via [`Recorder::replay_keyed`],
    /// so `other` is expected to have captured it into its journal.
    pub fn absorb(&mut self, other: Recorder) {
        debug_assert!(
            other.learning.is_empty(),
            "absorbing a recorder with live learning state; enable keyed capture on workers"
        );
        for (idx, a) in other.apps.into_iter().enumerate() {
            let dst = self.app_mut(AppId(idx as u16));
            dst.injected.merge(&a.injected);
            dst.delivered.merge(&a.delivered);
            dst.latencies.extend_from(&a.latencies);
            dst.packets_injected += a.packets_injected;
            dst.packets_delivered += a.packets_delivered;
            dst.packets_detoured += a.packets_detoured;
            for (h, o) in dst.hops_histogram.iter_mut().zip(a.hops_histogram.iter()) {
                *h += *o;
            }
            dst.hops_total += a.hops_total;
            dst.max_ingress_burst = dst.max_ingress_burst.max(a.max_ingress_burst);
            dst.rank_comm.extend(a.rank_comm);
        }
        self.ports.merge(&other.ports);
        self.congestion.merge(&other.congestion);
    }

    #[inline]
    fn app_mut(&mut self, app: AppId) -> &mut AppRecord {
        let idx = app.idx();
        while self.apps.len() <= idx {
            self.apps.push(AppRecord::new(self.cfg.bin_width));
        }
        &mut self.apps[idx]
    }

    // ---- network-side hooks ----------------------------------------------

    /// A packet of `bytes` entered the network at `t`.
    #[inline]
    pub fn packet_injected(&mut self, app: AppId, t: Time, bytes: u32) {
        let a = self.app_mut(app);
        a.injected.add(t, bytes as u64);
        a.packets_injected += 1;
        self.emit(TraceEvent::Injected { app, t, bytes });
    }

    /// A packet injected at `inject` was delivered at `deliver`. Callers of
    /// this convenience wrapper know nothing about the forwarding path, so
    /// the delivery stays out of the hop statistics (`hops_histogram`,
    /// `hops_total`, and thus `mean_hops`) rather than polluting bucket 0.
    #[inline]
    pub fn packet_delivered(&mut self, app: AppId, inject: Time, deliver: Time, bytes: u32) {
        self.deliver(app, inject, deliver, bytes, false, None)
    }

    /// [`Recorder::packet_delivered`] with the non-minimal-path flag. Like
    /// the 2-arg wrapper, carries no hop count and skips hop accounting.
    #[inline]
    pub fn packet_delivered_routed(
        &mut self,
        app: AppId,
        inject: Time,
        deliver: Time,
        bytes: u32,
        detoured: bool,
    ) {
        self.deliver(app, inject, deliver, bytes, detoured, None)
    }

    /// Full delivery record: detour flag plus hop count (the per-packet
    /// "forwarding path" detail of the paper's IO module, aggregated). An
    /// explicit `hops` of 0 is a real observation (node talking to itself
    /// through one router) and is counted.
    #[inline]
    pub fn packet_delivered_full(
        &mut self,
        app: AppId,
        inject: Time,
        deliver: Time,
        bytes: u32,
        detoured: bool,
        hops: u8,
    ) {
        self.deliver(app, inject, deliver, bytes, detoured, Some(hops))
    }

    #[inline]
    fn deliver(
        &mut self,
        app: AppId,
        inject: Time,
        deliver: Time,
        bytes: u32,
        detoured: bool,
        hops: Option<u8>,
    ) {
        let record_lat = self.cfg.record_latencies;
        let a = self.app_mut(app);
        a.delivered.add(deliver, bytes as u64);
        a.packets_delivered += 1;
        if detoured {
            a.packets_detoured += 1;
        }
        if let Some(h) = hops {
            let bucket = (h as usize).min(a.hops_histogram.len() - 1);
            a.hops_histogram[bucket] += 1;
            a.hops_total += h as u64;
        }
        if record_lat {
            a.latencies.record(deliver, deliver.saturating_sub(inject));
        }
        self.emit(TraceEvent::Delivered { app, inject, deliver, bytes, detoured, hops });
    }

    /// A level-1 Q-table entry moved by `|delta_ps|` at time `t` (Q-adaptive
    /// convergence telemetry; see [`LearningTrace`]).
    #[inline]
    pub fn q1_updated(&mut self, t: Time, delta_ps: f64) {
        if let Some(j) = &mut self.keyed {
            // Under keyed capture the update reaches the trace through the
            // journal (in canonical `(time, seq)` order) at merge time, not
            // through this partition's sink.
            let (time, seq) = self.key;
            j.push(KeyedEntry { time, seq, kind: KeyedKind::Q1Update { t, delta_ps } });
        } else {
            self.learning.record(t, delta_ps);
            self.emit(TraceEvent::Q1Updated { t, delta_ps });
        }
    }

    /// A packet at `(router, port)` was head-of-line blocked for `dur` ps.
    #[inline]
    pub fn port_stalled(&mut self, router: RouterId, port: Port, dur: Time) {
        if self.cfg.record_ports {
            self.ports.add_stall(router.0, port.0, dur);
            self.emit(TraceEvent::Stalled { router, port, dur });
        }
    }

    /// A packet of `bytes` was forwarded out of `(router, port)`, occupying
    /// the link for `busy` ps.
    #[inline]
    pub fn packet_forwarded(&mut self, router: RouterId, port: Port, busy: Time, bytes: u32) {
        if !self.cfg.record_ports {
            return;
        }
        self.ports.add_forward(router.0, port.0, busy, bytes as u64);
        match self.topo.port_kind(port) {
            LinkKind::Local => {
                let g = self.topo.group_of_router(router);
                self.congestion.add_local(g.idx(), bytes as u64);
            }
            LinkKind::Global => {
                if let Some(dst) = self.topo.global_port_target(router, port) {
                    let src = self.topo.group_of_router(router);
                    self.congestion.add_global(src.idx(), dst.idx(), bytes as u64);
                }
            }
            LinkKind::Terminal => {}
        }
        self.emit(TraceEvent::Forwarded { router, port, busy, bytes });
    }

    // ---- MPI-side hooks ----------------------------------------------------

    /// A rank posted `bytes` of consecutive messages in one burst; tracks the
    /// application's peak ingress volume (paper §IV).
    #[inline]
    pub fn ingress_burst(&mut self, app: AppId, bytes: u64) {
        let a = self.app_mut(app);
        if bytes > a.max_ingress_burst {
            a.max_ingress_burst = bytes;
        }
        self.emit(TraceEvent::IngressBurst { app, bytes });
    }

    /// Final per-rank communication/execution times.
    pub fn rank_finished(&mut self, app: AppId, rank: u32, comm: Time, exec: Time) {
        if let Some(j) = &mut self.keyed {
            // As with q1_updated, keyed entries reach the trace via the
            // merged journal so the file keeps canonical order.
            let (time, seq) = self.key;
            j.push(KeyedEntry {
                time,
                seq,
                kind: KeyedKind::RankFinished { app, rank, comm, exec },
            });
        } else {
            self.app_mut(app).rank_comm.push((rank, comm, exec));
            self.emit(TraceEvent::RankFinished { app, rank, comm, exec });
        }
    }

    // ---- read side ---------------------------------------------------------

    /// Per-app aggregates (index = app id); apps never touched are absent.
    pub fn apps(&self) -> &[AppRecord] {
        &self.apps
    }

    /// Aggregates for one app, if it recorded anything.
    pub fn app(&self, app: AppId) -> Option<&AppRecord> {
        self.apps.get(app.idx())
    }

    /// The per-port counter table.
    pub fn ports(&self) -> &PortTable {
        &self.ports
    }

    /// The congestion byte matrix.
    pub fn congestion(&self) -> &CongestionMatrix {
        &self.congestion
    }

    /// The Q-adaptive convergence trace (empty unless the run used
    /// Q-adaptive routing).
    pub fn learning(&self) -> &LearningTrace {
        &self.learning
    }

    /// System-wide delivered-bytes series (sum over apps).
    pub fn system_delivered(&self) -> BinSeries {
        let mut out = BinSeries::new(self.cfg.bin_width);
        for a in &self.apps {
            out.merge(&a.delivered);
        }
        out
    }

    /// System-wide latency summary (all apps pooled). Summarizes over the
    /// per-app sample slices in place — no per-call copy of every sample —
    /// and reports bit-identically to the pooled form.
    pub fn system_latency(&self) -> crate::hist::LatencySummary {
        let parts: Vec<&[(Time, u64)]> = self.apps.iter().map(|a| a.latencies.samples()).collect();
        crate::hist::summarize_slices(&parts)
    }

    /// Sanity invariant: packets delivered never exceed packets injected.
    pub fn conservation_ok(&self) -> bool {
        self.apps.iter().all(|a| a.packets_delivered <= a.packets_injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfsim_topology::DragonflyParams;

    fn rec() -> Recorder {
        let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        Recorder::new(&topo, RecorderConfig::default())
    }

    #[test]
    fn packet_lifecycle_updates_app_counters() {
        let mut r = rec();
        let app = AppId(0);
        r.packet_injected(app, 1_000, 512);
        r.packet_delivered(app, 1_000, 5_000, 512);
        let a = r.app(app).unwrap();
        assert_eq!(a.packets_injected, 1);
        assert_eq!(a.packets_delivered, 1);
        assert_eq!(a.injected.total(), 512);
        assert_eq!(a.delivered.total(), 512);
        assert_eq!(a.latencies.samples(), &[(5_000, 4_000)]);
        assert!(r.conservation_ok());
    }

    #[test]
    fn latency_recording_can_be_disabled() {
        let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        let mut r =
            Recorder::new(&topo, RecorderConfig { record_latencies: false, ..Default::default() });
        r.packet_delivered(AppId(0), 0, 10, 512);
        assert!(r.app(AppId(0)).unwrap().latencies.is_empty());
    }

    #[test]
    fn forwards_feed_congestion_matrix() {
        let topo = Arc::new(Topology::new(DragonflyParams::tiny_72()).unwrap());
        let mut r = Recorder::new(&topo, RecorderConfig::default());
        // Router 0, group 0. Port 2 is the first local port (p=2);
        // global ports start at 2 + 3 = 5.
        r.packet_forwarded(RouterId(0), Port(2), 20_480, 512);
        let gw = topo.gateway(dfsim_topology::GroupId(0), dfsim_topology::GroupId(1)).unwrap();
        r.packet_forwarded(gw.0, gw.1, 20_480, 512);
        assert_eq!(r.congestion().local(0), 512);
        assert_eq!(r.congestion().global(0, 1), 512);
        assert_eq!(r.ports().total_bytes(LinkKind::Local), 512);
        assert_eq!(r.ports().total_bytes(LinkKind::Global), 512);
    }

    #[test]
    fn ingress_burst_keeps_max() {
        let mut r = rec();
        r.ingress_burst(AppId(1), 100);
        r.ingress_burst(AppId(1), 50);
        r.ingress_burst(AppId(1), 300);
        assert_eq!(r.app(AppId(1)).unwrap().max_ingress_burst, 300);
        // App 0 slot exists (dense vec) but recorded nothing.
        assert_eq!(r.app(AppId(0)).unwrap().max_ingress_burst, 0);
    }

    #[test]
    fn system_series_sums_apps() {
        let mut r = rec();
        r.packet_delivered(AppId(0), 0, 10, 100);
        r.packet_delivered(AppId(1), 0, 10, 200);
        assert_eq!(r.system_delivered().total(), 300);
        assert_eq!(r.system_latency().n, 2);
    }

    #[test]
    fn hop_histogram_accumulates() {
        let mut r = rec();
        r.packet_delivered_full(AppId(0), 0, 10, 512, false, 3);
        r.packet_delivered_full(AppId(0), 0, 20, 512, true, 6);
        r.packet_delivered_full(AppId(0), 0, 30, 512, false, 200); // saturates
        let a = r.app(AppId(0)).unwrap();
        assert_eq!(a.hops_histogram[3], 1);
        assert_eq!(a.hops_histogram[6], 1);
        assert_eq!(a.hops_histogram[8], 1);
        assert_eq!(a.hops_total, 3 + 6 + 200);
        assert_eq!(a.packets_detoured, 1);
    }

    #[test]
    fn hopless_wrappers_stay_out_of_hop_statistics() {
        // The convenience wrappers carry no path information; they must not
        // funnel phantom hops=0 entries into the histogram and skew mean_hops.
        let mut r = rec();
        r.packet_delivered(AppId(0), 0, 10, 512);
        r.packet_delivered_routed(AppId(0), 0, 20, 512, true);
        let a = r.app(AppId(0)).unwrap();
        assert_eq!(a.packets_delivered, 2);
        assert_eq!(a.packets_detoured, 1);
        assert_eq!(a.hops_histogram, [0; 9], "hop-less delivery polluted the histogram");
        assert_eq!(a.hops_total, 0);
        // An explicit hops=0 is a real observation and is counted.
        r.packet_delivered_full(AppId(0), 0, 30, 512, false, 0);
        assert_eq!(r.app(AppId(0)).unwrap().hops_histogram[0], 1);
    }

    #[test]
    fn sink_observes_every_hook() {
        use crate::sink::VecSink;
        let sink = VecSink::new();
        let mut r = rec();
        r.set_sink(Box::new(sink.clone()));
        r.packet_injected(AppId(0), 1_000, 512);
        r.packet_delivered_full(AppId(0), 1_000, 5_000, 512, true, 4);
        r.packet_delivered(AppId(1), 2_000, 3_000, 256);
        r.port_stalled(RouterId(1), Port(2), 40);
        r.packet_forwarded(RouterId(0), Port(2), 20_480, 512);
        r.q1_updated(4_000, 2.5);
        r.ingress_burst(AppId(1), 4_096);
        r.rank_finished(AppId(0), 2, 10, 20);
        let evs = sink.events();
        assert_eq!(evs.len(), 8);
        assert_eq!(evs[0], TraceEvent::Injected { app: AppId(0), t: 1_000, bytes: 512 });
        assert_eq!(
            evs[1],
            TraceEvent::Delivered {
                app: AppId(0),
                inject: 1_000,
                deliver: 5_000,
                bytes: 512,
                detoured: true,
                hops: Some(4),
            }
        );
        assert_eq!(
            evs[2],
            TraceEvent::Delivered {
                app: AppId(1),
                inject: 2_000,
                deliver: 3_000,
                bytes: 256,
                detoured: false,
                hops: None,
            }
        );
        assert!(matches!(evs[5], TraceEvent::Q1Updated { t: 4_000, .. }));
        assert!(matches!(evs[7], TraceEvent::RankFinished { app: AppId(0), rank: 2, .. }));
    }

    #[test]
    fn keyed_hooks_do_not_reach_the_sink() {
        use crate::sink::VecSink;
        let sink = VecSink::new();
        let mut r = rec();
        r.enable_keyed_capture();
        r.set_sink(Box::new(sink.clone()));
        r.set_key(100, 7);
        r.q1_updated(100, 5.0);
        r.rank_finished(AppId(0), 2, 50, 150);
        assert!(sink.events().is_empty(), "keyed entries must reach the trace via the journal");
        assert_eq!(r.drain_keyed().len(), 2);
    }

    #[test]
    fn replaying_the_event_stream_rebuilds_recorder_state() {
        use crate::sink::VecSink;
        let sink = VecSink::new();
        let mut r = rec();
        r.set_sink(Box::new(sink.clone()));
        r.packet_injected(AppId(0), 1_000, 512);
        r.packet_delivered_full(AppId(0), 1_000, 5_000, 512, true, 4);
        r.packet_delivered(AppId(1), 2_000, 3_000, 256);
        r.packet_forwarded(RouterId(0), Port(2), 20_480, 512);
        r.port_stalled(RouterId(1), Port(2), 40);
        r.q1_updated(4_000, 2.5);
        r.ingress_burst(AppId(1), 4_096);
        r.rank_finished(AppId(0), 2, 10, 20);

        let mut fresh = rec();
        for ev in sink.events() {
            fresh.replay_event(&ev);
        }
        let (a0, f0) = (r.app(AppId(0)).unwrap(), fresh.app(AppId(0)).unwrap());
        assert_eq!(a0.packets_injected, f0.packets_injected);
        assert_eq!(a0.packets_delivered, f0.packets_delivered);
        assert_eq!(a0.hops_histogram, f0.hops_histogram);
        assert_eq!(a0.latencies.samples(), f0.latencies.samples());
        assert_eq!(a0.rank_comm, f0.rank_comm);
        let (a1, f1) = (r.app(AppId(1)).unwrap(), fresh.app(AppId(1)).unwrap());
        assert_eq!(a1.max_ingress_burst, f1.max_ingress_burst);
        assert_eq!(a1.hops_total, f1.hops_total);
        assert_eq!(r.learning().updates(), fresh.learning().updates());
        assert_eq!(r.ports().get(1, 2).stall_ps, fresh.ports().get(1, 2).stall_ps);
        assert_eq!(r.congestion().local(0), fresh.congestion().local(0));
    }

    #[test]
    fn rank_comm_records() {
        let mut r = rec();
        r.rank_finished(AppId(0), 3, 1_000, 2_000);
        assert_eq!(r.app(AppId(0)).unwrap().rank_comm, vec![(3, 1_000, 2_000)]);
    }

    #[test]
    fn keyed_capture_diverts_and_replay_restores() {
        let mut worker = rec();
        worker.enable_keyed_capture();
        worker.set_key(100, 7);
        worker.q1_updated(100, 5.0);
        worker.set_key(200, 9);
        worker.rank_finished(AppId(0), 2, 50, 150);
        // Nothing landed in the live aggregates.
        assert!(worker.learning().is_empty());
        assert!(worker.apps().first().is_none_or(|a| a.rank_comm.is_empty()));

        let journal = worker.drain_keyed();
        assert_eq!(journal.len(), 2);
        assert_eq!(journal[0].seq, 7);
        assert!(worker.drain_keyed().is_empty(), "drain leaves the journal empty");

        let mut master = rec();
        master.replay_keyed(journal);
        assert_eq!(master.learning().updates(), 1);
        assert_eq!(master.app(AppId(0)).unwrap().rank_comm, vec![(2, 50, 150)]);
    }

    #[test]
    fn absorb_merges_order_insensitive_state() {
        let mut a = rec();
        a.packet_injected(AppId(0), 0, 512);
        a.packet_delivered_full(AppId(0), 0, 10, 512, false, 3);
        a.ingress_burst(AppId(0), 100);
        a.port_stalled(RouterId(1), Port(2), 40);

        let mut b = rec();
        b.packet_injected(AppId(0), 0, 512);
        b.packet_delivered_full(AppId(0), 0, 20, 512, true, 5);
        b.packet_injected(AppId(1), 0, 256);
        b.ingress_burst(AppId(0), 300);
        b.port_stalled(RouterId(1), Port(2), 2);
        b.packet_forwarded(RouterId(0), Port(2), 20_480, 512);

        a.absorb(b);
        let app0 = a.app(AppId(0)).unwrap();
        assert_eq!(app0.packets_injected, 2);
        assert_eq!(app0.packets_delivered, 2);
        assert_eq!(app0.packets_detoured, 1);
        assert_eq!(app0.hops_histogram[3], 1);
        assert_eq!(app0.hops_histogram[5], 1);
        assert_eq!(app0.hops_total, 8);
        assert_eq!(app0.max_ingress_burst, 300);
        assert_eq!(app0.latencies.len(), 2);
        assert_eq!(a.app(AppId(1)).unwrap().packets_injected, 1);
        assert_eq!(a.ports().get(1, 2).stall_ps, 42);
        assert_eq!(a.congestion().local(0), 512);
        assert!(a.conservation_ok());
    }
}
