//! Instrumentation layer — the paper's "IO module" (§III).
//!
//! The paper enhances SST with an IO module that records any performance
//! counter at any frequency: per-packet detail (source, destination, send and
//! receive times, forwarding path), per-application link usage, and
//! application-level timestamps. This crate is that module for our simulator:
//!
//! * [`recorder::Recorder`] — the single sink every component reports into,
//! * [`series`] — binned time series (throughput along simulated time,
//!   Figs 5/9/13b),
//! * [`hist`] — latency sample pools with quantiles (Figs 6/7/13a),
//! * [`stall`] — per-port stall/busy/traffic accounting (Fig 11),
//! * [`congestion`] — the group-pair congestion-index matrix (Fig 12),
//! * [`summary`] — mean/std/min/max helpers used by every table,
//! * [`window`] — time spans and overlap math for attributing interference
//!   to co-residency intervals under churn,
//! * [`sink`] / [`trace`] — the streaming event bus: subscribers observing
//!   every recorder hook live, and the `dfsim-trace v1` binary file format
//!   that persists the stream with bounded memory and replays it losslessly.
//!
//! Recording is allocation-light: counters are dense vectors indexed by
//! (router, port) or by time bin, and latency samples append to per-app
//! vectors. Everything is plain data so reports can be serialized.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod hist;
pub mod learning;
pub mod recorder;
pub mod series;
pub mod sink;
pub mod stall;
pub mod summary;
pub mod trace;
pub mod window;

pub use congestion::CongestionMatrix;
pub use hist::{summarize_slices, LatencySummary, SamplePool};
pub use learning::LearningTrace;
pub use recorder::{AppId, KeyedEntry, KeyedKind, Recorder, RecorderConfig};
pub use series::BinSeries;
pub use sink::{EventSink, TraceEvent, VecSink};
pub use stall::PortStats;
pub use summary::Stats;
pub use trace::{
    read_meta, read_trace, TraceContents, TraceError, TraceWriter, EVENT_KIND_NAMES, TRACE_HEADER,
};
pub use window::{co_residency, Span};
