//! `dfsim-trace v1`: the compact binary on-disk form of the recorder's
//! event stream.
//!
//! ## Format
//!
//! A trace file is the version header followed by length-prefixed frames:
//!
//! ```text
//! "dfsim-trace v1\n"                      (15-byte magic / version line)
//! frame := kind:u8  len:u32le  payload[len]
//!   kind 1  EVENTS  payload = concatenated encoded events (below)
//!   kind 2  META    payload = opaque run-metadata blob (written by the
//!                   runner; everything a replay needs beyond the events)
//!   kind 3  END     payload empty — marks a complete file; a trace
//!                   without it was truncated mid-write
//! ```
//!
//! Events are packed little-endian, one tag byte then fixed-width fields
//! (`f64` as raw bits, so values survive bit-exactly):
//!
//! ```text
//! 1 Injected      app:u16 t:u64 bytes:u32
//! 2 Delivered     app:u16 inject:u64 deliver:u64 bytes:u32 detoured:u8
//!                 has_hops:u8 hops:u8
//! 3 Forwarded     router:u32 port:u8 busy:u64 bytes:u32
//! 4 Stalled       router:u32 port:u8 dur:u64
//! 5 Q1Updated     t:u64 delta_bits:u64
//! 6 IngressBurst  app:u16 bytes:u64
//! 7 RankFinished  app:u16 rank:u32 comm:u64 exec:u64
//! ```
//!
//! [`TraceWriter`] implements [`EventSink`]: it buffers events into an
//! in-memory frame and flushes whenever the frame reaches
//! [`FLUSH_THRESHOLD`] bytes, so memory stays bounded no matter how long
//! the run is. [`read_trace`] streams a file back out, frame by frame,
//! handing each decoded event to a callback — the reader never holds more
//! than one frame in memory either. Every malformation is a *named*
//! [`TraceError`], mirroring the `dfsim-qtable v1` snapshot conventions.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use dfsim_topology::{Port, RouterId};

use crate::recorder::AppId;
use crate::sink::{EventSink, TraceEvent};

/// Magic first bytes of every trace file (bump the version when the format
/// changes; old files are then rejected with [`TraceError::Version`]).
pub const TRACE_HEADER: &[u8] = b"dfsim-trace v1\n";

/// Flush the in-memory events frame once it holds this many bytes. Small
/// enough to bound memory, large enough to amortize the frame header and
/// the `BufWriter` copy.
pub const FLUSH_THRESHOLD: usize = 64 * 1024;

const FRAME_EVENTS: u8 = 1;
const FRAME_META: u8 = 2;
const FRAME_END: u8 = 3;

/// Why a trace could not be written, read or replayed.
#[derive(Debug)]
pub enum TraceError {
    /// Reading or writing the file failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error rendering.
        msg: String,
    },
    /// The file does not start with the `dfsim-trace v1` header.
    Version {
        /// What the first bytes actually were.
        found: String,
    },
    /// The file ends mid-frame, or the END marker is missing — the writer
    /// died before finishing.
    Truncated {
        /// Byte offset where the file gave out.
        offset: u64,
        /// What was being read.
        what: &'static str,
    },
    /// A frame or event is structurally invalid.
    Malformed {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong.
        msg: String,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io { path, msg } => {
                write!(f, "trace I/O error on {}: {msg}", path.display())
            }
            TraceError::Version { found } => write!(
                f,
                "trace version mismatch: expected '{}', found '{found}'",
                String::from_utf8_lossy(TRACE_HEADER).trim_end()
            ),
            TraceError::Truncated { offset, what } => {
                write!(f, "truncated trace: file ends at byte {offset} while reading {what}")
            }
            TraceError::Malformed { offset, msg } => {
                write!(f, "malformed trace (byte {offset}): {msg}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl TraceError {
    fn io(path: &Path, e: std::io::Error) -> Self {
        TraceError::Io { path: path.to_path_buf(), msg: e.to_string() }
    }
}

// ---- encoding --------------------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append one event's binary form to `buf` (the module-docs layout).
pub fn encode_event(buf: &mut Vec<u8>, ev: &TraceEvent) {
    match *ev {
        TraceEvent::Injected { app, t, bytes } => {
            buf.push(1);
            put_u16(buf, app.0);
            put_u64(buf, t);
            put_u32(buf, bytes);
        }
        TraceEvent::Delivered { app, inject, deliver, bytes, detoured, hops } => {
            buf.push(2);
            put_u16(buf, app.0);
            put_u64(buf, inject);
            put_u64(buf, deliver);
            put_u32(buf, bytes);
            buf.push(u8::from(detoured));
            buf.push(u8::from(hops.is_some()));
            buf.push(hops.unwrap_or(0));
        }
        TraceEvent::Forwarded { router, port, busy, bytes } => {
            buf.push(3);
            put_u32(buf, router.0);
            buf.push(port.0);
            put_u64(buf, busy);
            put_u32(buf, bytes);
        }
        TraceEvent::Stalled { router, port, dur } => {
            buf.push(4);
            put_u32(buf, router.0);
            buf.push(port.0);
            put_u64(buf, dur);
        }
        TraceEvent::Q1Updated { t, delta_ps } => {
            buf.push(5);
            put_u64(buf, t);
            put_u64(buf, delta_ps.to_bits());
        }
        TraceEvent::IngressBurst { app, bytes } => {
            buf.push(6);
            put_u16(buf, app.0);
            put_u64(buf, bytes);
        }
        TraceEvent::RankFinished { app, rank, comm, exec } => {
            buf.push(7);
            put_u16(buf, app.0);
            put_u32(buf, rank);
            put_u64(buf, comm);
            put_u64(buf, exec);
        }
    }
}

/// A checked little-endian cursor over one frame payload. Unlike the DES
/// wire reader (a trusted intra-run protocol that panics on underrun), a
/// trace file is external input: every read can fail with a named error.
struct Cur<'a> {
    data: &'a [u8],
    pos: usize,
    /// File offset of `data[0]`, for error messages.
    base: u64,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], TraceError> {
        let s =
            self.pos.checked_add(n).and_then(|end| self.data.get(self.pos..end)).ok_or(
                TraceError::Truncated { offset: self.base + self.data.len() as u64, what },
            )?;
        self.pos += n;
        Ok(s)
    }

    /// A fixed-width little-endian field as an owned array. `take` hands
    /// back exactly `N` bytes, so the conversion's error arm is purely
    /// defensive — it still maps onto a named error rather than a panic.
    fn take_n<const N: usize>(&mut self, what: &'static str) -> Result<[u8; N], TraceError> {
        let at = self.base + self.pos as u64;
        let s = self.take(N, what)?;
        s.try_into().map_err(|_| TraceError::Malformed {
            offset: at,
            msg: format!("{what}: internal field-width mismatch"),
        })
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, TraceError> {
        let [b] = self.take_n::<1>(what)?;
        Ok(b)
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(self.take_n(what)?))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(self.take_n(what)?))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(self.take_n(what)?))
    }
}

/// Decode every event of one EVENTS-frame payload into `on_event`.
fn decode_events(
    payload: &[u8],
    base: u64,
    on_event: &mut dyn FnMut(&TraceEvent),
) -> Result<(), TraceError> {
    let mut c = Cur { data: payload, pos: 0, base };
    while c.pos < payload.len() {
        let at = base + c.pos as u64;
        let tag = c.u8("an event tag")?;
        let ev = match tag {
            1 => TraceEvent::Injected {
                app: AppId(c.u16("Injected.app")?),
                t: c.u64("Injected.t")?,
                bytes: c.u32("Injected.bytes")?,
            },
            2 => {
                let app = AppId(c.u16("Delivered.app")?);
                let inject = c.u64("Delivered.inject")?;
                let deliver = c.u64("Delivered.deliver")?;
                let bytes = c.u32("Delivered.bytes")?;
                let detoured = c.u8("Delivered.detoured")? != 0;
                let has_hops = c.u8("Delivered.has_hops")? != 0;
                let hops = c.u8("Delivered.hops")?;
                TraceEvent::Delivered {
                    app,
                    inject,
                    deliver,
                    bytes,
                    detoured,
                    hops: has_hops.then_some(hops),
                }
            }
            3 => TraceEvent::Forwarded {
                router: RouterId(c.u32("Forwarded.router")?),
                port: Port(c.u8("Forwarded.port")?),
                busy: c.u64("Forwarded.busy")?,
                bytes: c.u32("Forwarded.bytes")?,
            },
            4 => TraceEvent::Stalled {
                router: RouterId(c.u32("Stalled.router")?),
                port: Port(c.u8("Stalled.port")?),
                dur: c.u64("Stalled.dur")?,
            },
            5 => TraceEvent::Q1Updated {
                t: c.u64("Q1Updated.t")?,
                delta_ps: f64::from_bits(c.u64("Q1Updated.delta")?),
            },
            6 => TraceEvent::IngressBurst {
                app: AppId(c.u16("IngressBurst.app")?),
                bytes: c.u64("IngressBurst.bytes")?,
            },
            7 => TraceEvent::RankFinished {
                app: AppId(c.u16("RankFinished.app")?),
                rank: c.u32("RankFinished.rank")?,
                comm: c.u64("RankFinished.comm")?,
                exec: c.u64("RankFinished.exec")?,
            },
            t => {
                return Err(TraceError::Malformed {
                    offset: at,
                    msg: format!("unknown event tag {t}"),
                })
            }
        };
        on_event(&ev);
    }
    Ok(())
}

// ---- writer ----------------------------------------------------------------

/// Streaming `dfsim-trace v1` writer: buffers events into frames of at most
/// ~[`FLUSH_THRESHOLD`] bytes on top of a [`BufWriter`], so the memory held
/// per attached sink is a small constant.
///
/// The [`EventSink::event`] path never does visible error handling (it is
/// the simulation hot loop); the first I/O failure is remembered and
/// surfaced from [`EventSink::finish`] / [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter {
    out: BufWriter<File>,
    path: PathBuf,
    buf: Vec<u8>,
    events: u64,
    err: Option<std::io::Error>,
}

impl TraceWriter {
    /// Create (truncate) `path` and write the version header.
    pub fn create(path: &Path) -> Result<Self, TraceError> {
        let file = File::create(path).map_err(|e| TraceError::io(path, e))?;
        let mut out = BufWriter::new(file);
        out.write_all(TRACE_HEADER).map_err(|e| TraceError::io(path, e))?;
        Ok(Self {
            out,
            path: path.to_path_buf(),
            buf: Vec::with_capacity(FLUSH_THRESHOLD + 64),
            events: 0,
            err: None,
        })
    }

    /// Events observed so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    fn write_frame(&mut self, kind: u8, payload: &[u8]) {
        if self.err.is_some() {
            return;
        }
        let len = match u32::try_from(payload.len()) {
            Ok(len) => len,
            Err(_) => {
                // A wrapped length word would silently corrupt the file;
                // surface it through the writer's sticky-error path.
                self.err = Some(std::io::Error::other(format!(
                    "frame payload of {} bytes overflows the u32 length word",
                    payload.len()
                )));
                return;
            }
        };
        let [l0, l1, l2, l3] = len.to_le_bytes();
        let hdr = [kind, l0, l1, l2, l3];
        let r = self.out.write_all(&hdr).and_then(|()| self.out.write_all(payload));
        if let Err(e) = r {
            self.err = Some(e);
        }
    }

    fn flush_events(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        self.write_frame(FRAME_EVENTS, &buf);
        self.buf = buf;
        self.buf.clear();
    }

    /// Observe one event (also the [`EventSink::event`] body).
    pub fn record(&mut self, ev: &TraceEvent) {
        encode_event(&mut self.buf, ev);
        self.events += 1;
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush_events();
        }
    }

    /// Flush everything, append the META frame (if given) and the END
    /// marker, and close the file. Returns the first error of the writer's
    /// whole lifetime, with the path attached.
    pub fn finish(mut self, meta: Option<&[u8]>) -> Result<(), TraceError> {
        self.flush_events();
        if let Some(m) = meta {
            self.write_frame(FRAME_META, m);
        }
        self.write_frame(FRAME_END, &[]);
        if let Some(e) = self.err.take() {
            return Err(TraceError::io(&self.path, e));
        }
        self.out.flush().map_err(|e| TraceError::io(&self.path, e))
    }
}

impl EventSink for TraceWriter {
    fn event(&mut self, ev: &TraceEvent) {
        self.record(ev);
    }

    fn finish(self: Box<Self>, meta: Option<&[u8]>) -> std::io::Result<()> {
        TraceWriter::finish(*self, meta).map_err(|e| std::io::Error::other(e.to_string()))
    }
}

// ---- reader ----------------------------------------------------------------

/// What a full scan of a trace file found (besides the events themselves).
#[derive(Debug, Clone, Default)]
pub struct TraceContents {
    /// Total events decoded.
    pub events: u64,
    /// Per-tag event counts, indexed by wire tag − 1 (Injected … RankFinished).
    pub counts: [u64; 7],
    /// The opaque META payload, when the file carries one.
    pub meta: Option<Vec<u8>>,
}

/// Stream a trace file, handing every event to `on_event` in file order.
/// Returns the scan totals and the META blob. A missing END marker, a
/// short frame or an unknown tag is a named [`TraceError`]; the reader
/// holds at most one frame in memory.
pub fn read_trace(
    path: &Path,
    mut on_event: impl FnMut(&TraceEvent),
) -> Result<TraceContents, TraceError> {
    scan(path, Some(&mut on_event))
}

/// Read only the frame structure and the META blob, skipping event payloads
/// without decoding them (used to bootstrap a replay: the metadata is
/// needed before the events can be fed anywhere).
pub fn read_meta(path: &Path) -> Result<TraceContents, TraceError> {
    scan(path, None)
}

fn scan(
    path: &Path,
    mut on_event: Option<&mut dyn FnMut(&TraceEvent)>,
) -> Result<TraceContents, TraceError> {
    let file = File::open(path).map_err(|e| TraceError::io(path, e))?;
    let file_len = file.metadata().map_err(|e| TraceError::io(path, e))?.len();
    let mut rd = BufReader::new(file);

    let mut header = [0u8; TRACE_HEADER.len()];
    let got = read_up_to(&mut rd, &mut header).map_err(|e| TraceError::io(path, e))?;
    // lint: allow(no-panic-paths) — `read_up_to` returns got <= header.len(), so the prefix range is in bounds by construction
    let head = &header[..got];
    if head != TRACE_HEADER {
        return Err(TraceError::Version {
            found: String::from_utf8_lossy(head).trim_end().to_string(),
        });
    }

    let mut out = TraceContents::default();
    let mut offset = TRACE_HEADER.len() as u64;
    let mut ended = false;
    let mut payload = Vec::new();
    while !ended {
        let mut hdr = [0u8; 5];
        let got = read_up_to(&mut rd, &mut hdr).map_err(|e| TraceError::io(path, e))?;
        if got == 0 {
            break; // clean EOF between frames; END-marker check below
        }
        if got < hdr.len() {
            return Err(TraceError::Truncated {
                offset: offset + got as u64,
                what: "a frame header",
            });
        }
        let [kind, l0, l1, l2, l3] = hdr;
        let len = u32::from_le_bytes([l0, l1, l2, l3]);
        let body_at = offset + 5;
        if body_at + u64::from(len) > file_len {
            return Err(TraceError::Truncated { offset: file_len, what: "a frame payload" });
        }
        match kind {
            FRAME_EVENTS => {
                if let Some(cb) = on_event.as_deref_mut() {
                    payload.clear();
                    payload.resize(host_len(len, offset)?, 0);
                    rd.read_exact(&mut payload).map_err(|e| TraceError::io(path, e))?;
                    decode_events(&payload, body_at, &mut |ev| {
                        out.events += 1;
                        let idx = usize::from(tag_of(ev)) - 1;
                        if let Some(slot) = out.counts.get_mut(idx) {
                            *slot += 1;
                        }
                        cb(ev);
                    })?;
                } else {
                    rd.seek(SeekFrom::Current(i64::from(len)))
                        .map_err(|e| TraceError::io(path, e))?;
                }
            }
            FRAME_META => {
                let mut m = vec![0u8; host_len(len, offset)?];
                rd.read_exact(&mut m).map_err(|e| TraceError::io(path, e))?;
                if out.meta.replace(m).is_some() {
                    return Err(TraceError::Malformed {
                        offset,
                        msg: "more than one META frame".into(),
                    });
                }
            }
            FRAME_END => {
                if len != 0 {
                    return Err(TraceError::Malformed {
                        offset,
                        msg: format!("END frame carries {len} payload bytes"),
                    });
                }
                ended = true;
            }
            k => {
                return Err(TraceError::Malformed {
                    offset,
                    msg: format!("unknown frame kind {k}"),
                })
            }
        }
        offset = body_at + u64::from(len);
    }
    if !ended {
        return Err(TraceError::Truncated { offset, what: "the END marker" });
    }
    Ok(out)
}

/// A frame length word as a host `usize` (a named error on hosts narrower
/// than 32 bits, never a silent wrap).
fn host_len(len: u32, offset: u64) -> Result<usize, TraceError> {
    usize::try_from(len).map_err(|_| TraceError::Malformed {
        offset,
        msg: format!("frame of {len} bytes exceeds the host address width"),
    })
}

/// Read as many bytes as the stream yields into `buf` (EOF-tolerant
/// `read_exact`): returns how many landed.
fn read_up_to(rd: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        // lint: allow(no-panic-paths) — the loop guard keeps got < buf.len(), so the tail range is in bounds
        let n = rd.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

fn tag_of(ev: &TraceEvent) -> u8 {
    match ev {
        TraceEvent::Injected { .. } => 1,
        TraceEvent::Delivered { .. } => 2,
        TraceEvent::Forwarded { .. } => 3,
        TraceEvent::Stalled { .. } => 4,
        TraceEvent::Q1Updated { .. } => 5,
        TraceEvent::IngressBurst { .. } => 6,
        TraceEvent::RankFinished { .. } => 7,
    }
}

/// Human-readable event-kind names, indexed like [`TraceContents::counts`].
pub const EVENT_KIND_NAMES: [&str; 7] = [
    "injected",
    "delivered",
    "forwarded",
    "stalled",
    "q1-updated",
    "ingress-burst",
    "rank-finished",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Injected { app: AppId(0), t: 1_000, bytes: 512 },
            TraceEvent::Delivered {
                app: AppId(0),
                inject: 1_000,
                deliver: 5_000,
                bytes: 512,
                detoured: true,
                hops: Some(4),
            },
            TraceEvent::Delivered {
                app: AppId(1),
                inject: 2_000,
                deliver: 3_000,
                bytes: 256,
                detoured: false,
                hops: None,
            },
            TraceEvent::Forwarded { router: RouterId(7), port: Port(3), busy: 20_480, bytes: 512 },
            TraceEvent::Stalled { router: RouterId(7), port: Port(3), dur: 99 },
            TraceEvent::Q1Updated { t: 4_000, delta_ps: -3.75 },
            TraceEvent::IngressBurst { app: AppId(1), bytes: 4096 },
            TraceEvent::RankFinished { app: AppId(0), rank: 2, comm: 10, exec: 20 },
        ]
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dfsim_trace_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_every_event_bit_exactly() {
        let path = tmp("roundtrip");
        let mut w = TraceWriter::create(&path).unwrap();
        for ev in sample_events() {
            w.record(&ev);
        }
        w.finish(Some(b"meta-blob")).unwrap();

        let mut back = Vec::new();
        let c = read_trace(&path, |ev| back.push(*ev)).unwrap();
        assert_eq!(back, sample_events());
        assert_eq!(c.events, 8);
        assert_eq!(c.counts, [1, 2, 1, 1, 1, 1, 1]);
        assert_eq!(c.meta.as_deref(), Some(&b"meta-blob"[..]));

        // f64 bits survive exactly.
        let TraceEvent::Q1Updated { delta_ps, .. } = back[5] else { panic!() };
        assert_eq!(delta_ps.to_bits(), (-3.75f64).to_bits());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn meta_scan_skips_events() {
        let path = tmp("metaonly");
        let mut w = TraceWriter::create(&path).unwrap();
        for ev in sample_events() {
            w.record(&ev);
        }
        w.finish(Some(b"m")).unwrap();
        let c = read_meta(&path).unwrap();
        assert_eq!(c.events, 0, "meta scan must not decode events");
        assert_eq!(c.meta.as_deref(), Some(&b"m"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn version_mismatch_is_named() {
        let path = tmp("version");
        std::fs::write(&path, b"dfsim-trace v99\nxxxx").unwrap();
        let e = read_trace(&path, |_| {}).unwrap_err();
        assert!(matches!(e, TraceError::Version { .. }), "{e}");
        assert!(e.to_string().contains("version mismatch"), "{e}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncation_is_named() {
        let path = tmp("trunc");
        let mut w = TraceWriter::create(&path).unwrap();
        for ev in sample_events() {
            w.record(&ev);
        }
        w.finish(None).unwrap();
        let full = std::fs::read(&path).unwrap();

        // Cut mid-frame: payload shorter than its header claims.
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let e = read_trace(&path, |_| {}).unwrap_err();
        assert!(matches!(e, TraceError::Truncated { .. }), "{e}");

        // Remove only the END marker: structurally fine but incomplete.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let e = read_trace(&path, |_| {}).unwrap_err();
        assert!(matches!(e, TraceError::Truncated { what: "the END marker", .. }), "{e}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_tags_are_named() {
        let path = tmp("corrupt");
        let mut w = TraceWriter::create(&path).unwrap();
        w.record(&TraceEvent::Injected { app: AppId(0), t: 0, bytes: 1 });
        w.finish(None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // First byte after the header + frame header is the event tag.
        let tag_at = TRACE_HEADER.len() + 5;
        bytes[tag_at] = 0xEE;
        std::fs::write(&path, &bytes).unwrap();
        let e = read_trace(&path, |_| {}).unwrap_err();
        assert!(matches!(e, TraceError::Malformed { .. }), "{e}");
        assert!(e.to_string().contains("unknown event tag"), "{e}");
        std::fs::remove_file(&path).unwrap();
    }
}
