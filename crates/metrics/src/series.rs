//! Binned time series for throughput-along-time figures (Figs 5, 9, 13b).

use dfsim_des::{Time, MILLISECOND};
use serde::{Deserialize, Serialize};

/// Accumulates a quantity (bytes) into fixed-width time bins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BinSeries {
    width: Time,
    bins: Vec<u64>,
    total: u64,
}

impl BinSeries {
    /// New series with bins of `width` picoseconds.
    pub fn new(width: Time) -> Self {
        assert!(width > 0, "bin width must be positive");
        Self { width, bins: Vec::new(), total: 0 }
    }

    /// Bin width.
    pub fn width(&self) -> Time {
        self.width
    }

    /// Add `amount` at time `t`.
    #[inline]
    pub fn add(&mut self, t: Time, amount: u64) {
        let idx = (t / self.width) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += amount;
        self.total += amount;
    }

    /// Total accumulated amount.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw per-bin totals.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Number of bins (highest touched bin + 1).
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The series as `(bin start ms, GB per ms)` points — the unit of the
    /// paper's throughput plots.
    pub fn as_gb_per_ms(&self) -> Vec<(f64, f64)> {
        let width_ms = self.width as f64 / MILLISECOND as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &b)| (i as f64 * width_ms, b as f64 / 1e9 / width_ms))
            .collect()
    }

    /// Mean rate in GB/ms over `[0, horizon)`; measures average throughput.
    pub fn mean_gb_per_ms(&self, horizon: Time) -> f64 {
        if horizon == 0 {
            return 0.0;
        }
        self.total as f64 / 1e9 / (horizon as f64 / MILLISECOND as f64)
    }

    /// Peak single-bin rate in GB/ms.
    pub fn peak_gb_per_ms(&self) -> f64 {
        let width_ms = self.width as f64 / MILLISECOND as f64;
        self.bins.iter().copied().max().unwrap_or(0) as f64 / 1e9 / width_ms
    }

    /// Total amount recorded in bins overlapping `[from, to)`, pro-rating
    /// the boundary bins by their covered fraction. This is the windowed
    /// read used to attribute traffic to a co-residency interval of two
    /// jobs in a churn scenario.
    pub fn total_between(&self, from: Time, to: Time) -> f64 {
        if to <= from || self.bins.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        let first = (from / self.width) as usize;
        let last = ((to - 1) / self.width) as usize;
        if first >= self.bins.len() {
            return 0.0;
        }
        for idx in first..=last.min(self.bins.len() - 1) {
            let bin_start = idx as Time * self.width;
            let bin_end = bin_start + self.width;
            let covered = to.min(bin_end).saturating_sub(from.max(bin_start));
            sum += self.bins[idx] as f64 * (covered as f64 / self.width as f64);
        }
        sum
    }

    /// Mean rate over the window `[from, to)` in GB/ms (0 for an empty
    /// window).
    pub fn rate_between_gb_per_ms(&self, from: Time, to: Time) -> f64 {
        if to <= from {
            return 0.0;
        }
        let ms = (to - from) as f64 / MILLISECOND as f64;
        self.total_between(from, to) / 1e9 / ms
    }

    /// Elementwise sum of two series (must share the bin width).
    pub fn merge(&mut self, other: &BinSeries) {
        assert_eq!(self.width, other.width, "bin width mismatch");
        if other.bins.len() > self.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate_by_index() {
        let mut s = BinSeries::new(100);
        s.add(0, 1);
        s.add(99, 2);
        s.add(100, 4);
        s.add(250, 8);
        assert_eq!(s.bins(), &[3, 4, 8]);
        assert_eq!(s.total(), 15);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn gb_per_ms_conversion() {
        // 1 GB in a 1 ms bin = 1 GB/ms.
        let mut s = BinSeries::new(MILLISECOND);
        s.add(0, 1_000_000_000);
        let pts = s.as_gb_per_ms();
        assert_eq!(pts.len(), 1);
        assert!((pts[0].1 - 1.0).abs() < 1e-12);
        assert!((s.peak_gb_per_ms() - 1.0).abs() < 1e-12);
        assert!((s.mean_gb_per_ms(2 * MILLISECOND) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = BinSeries::new(10);
        a.add(0, 1);
        let mut b = BinSeries::new(10);
        b.add(25, 3);
        a.merge(&b);
        assert_eq!(a.bins(), &[1, 0, 3]);
        assert_eq!(a.total(), 4);
    }

    #[test]
    #[should_panic(expected = "bin width mismatch")]
    fn merge_rejects_mismatched_widths() {
        let mut a = BinSeries::new(10);
        let b = BinSeries::new(20);
        a.merge(&b);
    }

    #[test]
    fn total_between_prorates_boundary_bins() {
        let mut s = BinSeries::new(100);
        s.add(0, 100); // bin 0
        s.add(150, 200); // bin 1
        s.add(250, 400); // bin 2
                         // Whole range.
        assert!((s.total_between(0, 300) - 700.0).abs() < 1e-9);
        // Half of bin 0 only.
        assert!((s.total_between(0, 50) - 50.0).abs() < 1e-9);
        // Half of bin 0 + all of bin 1 + half of bin 2.
        assert!((s.total_between(50, 250) - (50.0 + 200.0 + 200.0)).abs() < 1e-9);
        // Window beyond the data.
        assert!((s.total_between(300, 1_000)).abs() < 1e-9);
        // Empty/inverted windows.
        assert_eq!(s.total_between(10, 10), 0.0);
        assert_eq!(s.total_between(20, 10), 0.0);
    }

    #[test]
    fn total_between_on_empty_series_is_zero() {
        let s = BinSeries::new(100);
        assert_eq!(s.total_between(0, 50), 0.0);
        assert_eq!(s.rate_between_gb_per_ms(0, 50), 0.0);
    }

    #[test]
    fn rate_between_is_windowed_mean() {
        // 2 GB in the first ms, nothing afterwards.
        let mut s = BinSeries::new(MILLISECOND);
        s.add(0, 2_000_000_000);
        assert!((s.rate_between_gb_per_ms(0, MILLISECOND) - 2.0).abs() < 1e-12);
        assert!((s.rate_between_gb_per_ms(0, 2 * MILLISECOND) - 1.0).abs() < 1e-12);
        assert_eq!(s.rate_between_gb_per_ms(5, 5), 0.0);
    }
}
