//! Time windows (spans) for co-residency attribution.
//!
//! Under churn, two jobs interfere only while both occupy nodes — their
//! *co-residency interval*. A [`Span`] is a half-open `[start, end)` window
//! of simulated time; [`Span::overlap`] intersects two of them, and a
//! windowed read of a [`crate::BinSeries`]
//! ([`crate::BinSeries::total_between`]) attributes traffic to the overlap.
//! The `churn` bench binary combines both to build its interference matrix.

use dfsim_des::Time;
use serde::{Deserialize, Serialize};

/// A half-open interval `[start, end)` of simulated time, picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start.
    pub start: Time,
    /// Exclusive end.
    pub end: Time,
}

impl Span {
    /// Build a span; `end < start` is clamped to empty.
    pub fn new(start: Time, end: Time) -> Self {
        Self { start, end: end.max(start) }
    }

    /// Span length in picoseconds.
    #[inline]
    pub fn duration(&self) -> Time {
        self.end - self.start
    }

    /// Whether the span covers no time.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `t` falls inside the span.
    #[inline]
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Intersection with another span, if non-empty.
    pub fn overlap(&self, other: &Span) -> Option<Span> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then_some(Span { start, end })
    }

    /// Overlap duration with another span (0 when disjoint).
    #[inline]
    pub fn overlap_duration(&self, other: &Span) -> Time {
        self.overlap(other).map_or(0, |s| s.duration())
    }

    /// Fraction of *this* span covered by the overlap with `other`
    /// (0 for an empty span).
    pub fn overlap_fraction(&self, other: &Span) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.overlap_duration(other) as f64 / self.duration() as f64
    }
}

/// Total co-residency between one span and a set of spans (e.g. one job
/// against every other job of a given workload kind). The spans in `others`
/// may overlap each other; overlapping time is counted once per span — the
/// interference-matrix weighting wants exposure, not a partition.
pub fn co_residency(span: &Span, others: &[Span]) -> Time {
    others.iter().map(|o| span.overlap_duration(o)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_basics() {
        let a = Span::new(10, 20);
        let b = Span::new(15, 30);
        assert_eq!(a.overlap(&b), Some(Span::new(15, 20)));
        assert_eq!(a.overlap_duration(&b), 5);
        assert_eq!(b.overlap_duration(&a), 5);
        assert!((a.overlap_fraction(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_and_touching_spans_do_not_overlap() {
        let a = Span::new(0, 10);
        assert_eq!(a.overlap(&Span::new(10, 20)), None);
        assert_eq!(a.overlap(&Span::new(50, 60)), None);
        assert_eq!(a.overlap_duration(&Span::new(10, 20)), 0);
    }

    #[test]
    fn empty_spans_are_harmless() {
        let e = Span::new(5, 5);
        assert!(e.is_empty());
        assert_eq!(e.duration(), 0);
        assert_eq!(e.overlap(&Span::new(0, 10)), None);
        assert_eq!(e.overlap_fraction(&Span::new(0, 10)), 0.0);
        // Inverted input clamps to empty.
        assert!(Span::new(9, 3).is_empty());
    }

    #[test]
    fn contains_is_half_open() {
        let s = Span::new(2, 4);
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert!(!s.contains(4));
    }

    #[test]
    fn co_residency_sums_overlaps() {
        let job = Span::new(0, 100);
        let others = [Span::new(10, 30), Span::new(90, 200), Span::new(300, 400)];
        assert_eq!(co_residency(&job, &others), 20 + 10);
    }
}
