//! Offline vendored stub of the `criterion` API surface this workspace
//! uses. It actually measures: each `Bencher::iter` call is calibrated to
//! a target batch duration, several batches are timed, and the best
//! (lowest-noise) per-iteration time is reported.
//!
//! Output is one line per benchmark in both a human form and a
//! machine-greppable `BENCH_RESULT {"id": ..., "ns_per_iter": ...}` form
//! that `scripts`/CI can collect into baseline files. No statistics,
//! plots, or baselines beyond that — swap in real criterion when a
//! registry is reachable.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<(String, f64)>,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: 10 }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = name.into();
        let mut b = Bencher { ns_per_iter: f64::NAN, samples: 10 };
        f(&mut b);
        self.record(id, b.ns_per_iter);
        self
    }

    fn record(&mut self, id: String, ns: f64) {
        println!("{id:<50} time: {:>12} /iter", format_ns(ns));
        println!("BENCH_RESULT {{\"id\": \"{id}\", \"ns_per_iter\": {ns:.1}}}");
        self.results.push((id, ns));
    }

    /// Print the collected results (called by `criterion_group!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.results.len());
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed batches (small values keep slow end-to-end
    /// benches fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let mut b = Bencher { ns_per_iter: f64::NAN, samples: self.sample_size };
        f(&mut b, input);
        self.c.record(full, b.ns_per_iter);
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        let mut b = Bencher { ns_per_iter: f64::NAN, samples: self.sample_size };
        f(&mut b);
        self.c.record(full, b.ns_per_iter);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Label `name` with parameter `param` (rendered `name/param`).
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self(format!("{}/{}", name.into(), param))
    }

    /// Label from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}
impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Times a closure; handed to every benchmark function.
#[derive(Debug)]
pub struct Bencher {
    ns_per_iter: f64,
    samples: usize,
}

impl Bencher {
    /// Measure `f`: calibrate a batch size to ~60 ms, then time
    /// `self.samples` batches and keep the fastest per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm caches and lazy statics
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(60);
        let batch = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            best = best.min(ns);
        }
        self.ns_per_iter = best;
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Entry point running benchmark groups (CLI flags are accepted and
/// ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1.is_finite() && c.results[0].1 > 0.0);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &n| b.iter(|| black_box(n * 2)));
        g.finish();
        assert_eq!(c.results[0].0, "g/f/7");
    }
}
