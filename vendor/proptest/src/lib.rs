//! Offline vendored stub of the `proptest` API surface this workspace uses.
//!
//! Implements the `proptest!` macro, the [`Strategy`] trait with the
//! combinators the test suite calls (`prop_map`, `prop_filter`, tuples,
//! ranges, `Just`, `prop_oneof!`, `prop::collection::vec`), assertion
//! macros, and [`ProptestConfig`]. Differences from real proptest: case
//! generation is seeded deterministically from the test name (fully
//! reproducible runs) and failing inputs are reported but not shrunk.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from an arbitrary label (FNV-1a).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Why a generated case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The case was rejected by an assumption or filter.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, Self::Reject(_))
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strat: self, f }
    }

    /// Keep only values satisfying `pred` (regenerating otherwise).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { strat: self, reason: reason.into(), pred }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strat.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    strat: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.strat.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 10000 consecutive values", self.reason);
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Weighted union of strategies (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs positive total weight");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights summed correctly")
    }
}

/// The `prop::` namespace as re-exported by proptest's prelude.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Generate vectors of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a proptest test file imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), ::std::format!($($fmt)+), a, b
        );
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} ({})",
            stringify!($a), stringify!($b), ::std::format!($($fmt)+)
        );
    }};
}

/// Skip cases violating a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Define property tests. Each inner `fn` becomes a `#[test]` that runs
/// `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_label(concat!(module_path!(), "::", stringify!($name)));
            let mut done: u32 = 0;
            let mut rejected: u64 = 0;
            while done < cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+),
                    $(&$arg),+
                );
                #[allow(clippy::redundant_closure_call)]
                let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => done += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "proptest {}: too many rejected cases ({rejected})",
                            stringify!($name)
                        );
                    }
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed at case {}:\n{}\ninputs: {}",
                            stringify!($name), done, msg, inputs
                        );
                    }
                    ::core::result::Result::Err(_) => unreachable!(),
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 5u64..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn map_and_filter_compose(x in evens().prop_filter("nonzero", |&x| x != 0)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }

        #[test]
        fn oneof_and_vec(xs in prop::collection::vec(prop_oneof![3 => Just(1u8), 1 => Just(2u8)], 1..50)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x == 1 || x == 2));
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honoured(_x in 0u8..255) {
            // Runs exactly 7 cases; nothing to assert beyond completion.
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failures_panic_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
