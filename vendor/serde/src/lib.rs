//! Offline vendored stub of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its report and config
//! types so they are ready for a JSON/CSV backend, but the container has no
//! crates.io access and nothing actually serializes yet (there is no
//! `serde_json` in the tree). This stub keeps the derive annotations
//! compiling: the traits are markers and the derive macros expand to empty
//! impls. Swap in real `serde` by flipping the `[workspace.dependencies]`
//! entry once a registry is reachable.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
