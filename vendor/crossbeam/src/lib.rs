//! Offline vendored stub of `crossbeam::scope`.
//!
//! Provides exactly the scoped-thread API `dfsim-core`'s sweep module uses:
//! [`scope`] hands the closure a [`Scope`] whose `spawn` takes closures that
//! borrow the caller's stack (`'env`), and every spawned thread is joined
//! before `scope` returns — the same guarantee real crossbeam gives.
//!
//! Internally this extends closure lifetimes to `'static` so they can ride
//! `std::thread::spawn`; soundness rests on the unconditional join loop
//! below, which never lets a worker outlive the borrowed environment.

use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Panic payload of a worker thread.
pub type Payload = Box<dyn Any + Send + 'static>;

/// A scope in which threads borrowing the environment may be spawned.
pub struct Scope<'env> {
    handles: Mutex<Vec<JoinHandle<()>>>,
    // Invariant over 'env, as in real crossbeam.
    _marker: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn a worker that may borrow the environment. The worker is joined
    /// before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        let scope_ptr = self as *const Scope<'env> as usize;
        let call: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // SAFETY: `scope` (and everything `'env` it borrows) outlives
            // this thread because `scope()` joins all handles before
            // returning, and `Scope` itself lives on `scope()`'s frame.
            let scope = unsafe { &*(scope_ptr as *const Scope<'env>) };
            f(scope);
        });
        // SAFETY: only the lifetime is transmuted ('env -> 'static); the
        // join loop in `scope()` guarantees the closure never runs after
        // 'env ends.
        let call: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(call) };
        let handle = std::thread::spawn(call);
        self.handles.lock().unwrap().push(handle);
    }
}

/// Run `f` with a [`Scope`]; join every spawned thread before returning.
/// `Err` carries the first worker panic, as in crossbeam.
pub fn scope<'env, F, R>(f: F) -> Result<R, Payload>
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope { handles: Mutex::new(Vec::new()), _marker: PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
    let mut first_panic: Option<Payload> = None;
    // Workers may spawn more workers; drain until quiescent.
    loop {
        let drained: Vec<JoinHandle<()>> = std::mem::take(scope.handles.lock().unwrap().as_mut());
        if drained.is_empty() {
            break;
        }
        for h in drained {
            if let Err(p) = h.join() {
                first_panic.get_or_insert(p);
            }
        }
    }
    match (result, first_panic) {
        (Ok(r), None) => Ok(r),
        (Ok(_), Some(p)) => Err(p),
        (Err(p), _) => std::panic::resume_unwind(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn workers_borrow_the_stack() {
        let total = AtomicU64::new(0);
        scope(|s| {
            for i in 0..8u64 {
                let total = &total;
                s.spawn(move |_| {
                    total.fetch_add(i, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn worker_panic_is_reported() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_is_joined() {
        let hits = AtomicU64::new(0);
        scope(|s| {
            let hits = &hits;
            s.spawn(move |inner| {
                inner.spawn(move |_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }
}
