//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! Expands to marker-trait impls for plain (non-generic) types and to
//! nothing when the type has generics — the workspace only derives on
//! concrete report/config structs, and the marker traits carry no methods.

use proc_macro::{TokenStream, TokenTree};

/// Find the type name following the `struct`/`enum` keyword and whether a
/// generic parameter list follows it.
fn type_name(input: TokenStream) -> Option<(String, bool)> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = iter.next() {
                    let generic = matches!(
                        iter.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
                return None;
            }
        }
    }
    None
}

/// Derive a marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => format!("impl ::serde::Serialize for {name} {{}}").parse().unwrap(),
        _ => TokenStream::new(),
    }
}

/// Derive a marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some((name, false)) => {
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}").parse().unwrap()
        }
        _ => TokenStream::new(),
    }
}
