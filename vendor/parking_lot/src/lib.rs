//! Offline vendored stub of the `parking_lot` API surface this workspace
//! uses: a [`Mutex`] whose `lock()` needs no `unwrap()`. Backed by
//! `std::sync::Mutex`; poisoning is ignored (a poisoned lock yields its
//! inner guard), matching parking_lot's no-poisoning semantics.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutex with parking_lot's panic-free `lock` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire the lock only if it is immediately available.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
