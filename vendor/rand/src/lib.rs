//! Offline vendored stub of the `rand` 0.8 API surface this workspace uses.
//!
//! The container has no crates.io access, so the workspace vendors the small
//! slice of `rand` it needs: [`rngs::SmallRng`] (xoshiro256++ seeded via
//! SplitMix64, the same generator real `rand` 0.8 uses on 64-bit targets),
//! the [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, and uniform range
//! sampling. Determinism is the only hard requirement of the simulator; the
//! exact stream only has to be stable, not identical to upstream `rand`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Error type for fallible byte filling (never produced by this stub).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rand stub error")
    }
}
impl std::error::Error for Error {}

/// Core random-number generation: raw integer and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the same
    /// expansion rand_core 0.6 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        // FP rounding can land `start + u * span` exactly on `end`; reject
        // and redraw to keep the half-open contract of real rand.
        loop {
            let v = self.start + unit_f64(rng) * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

/// Uniform `u64` in `[0, n)` by multiply-shift with rejection.
#[inline]
fn uniform_u64<G: RngCore + ?Sized>(rng: &mut G, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Lemire's method: keep the high word of a 128-bit product, rejecting
    // the biased low region so every value is exactly equally likely.
    let threshold = n.wrapping_neg() % n;
    loop {
        let m = (rng.next_u64() as u128) * (n as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

#[inline]
fn unit_f64<G: RngCore + ?Sized>(rng: &mut G) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self;
}
impl Standard for f64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        unit_f64(rng)
    }
}
impl Standard for u64 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample<G: RngCore + ?Sized>(rng: &mut G) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        unit_f64(self) < p
    }

    /// Sample a value of a [`Standard`]-distributed type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's `SmallRng` on
    /// 64-bit platforms. Fast, small state, excellent statistical quality;
    /// not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn deterministic_from_seed() {
            let mut a = SmallRng::seed_from_u64(1);
            let mut b = SmallRng::seed_from_u64(1);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn ranges_are_in_bounds() {
            let mut r = SmallRng::seed_from_u64(2);
            for _ in 0..10_000 {
                let x: u64 = r.gen_range(10..20);
                assert!((10..20).contains(&x));
                let y: usize = r.gen_range(0..=5);
                assert!(y <= 5);
                let f: f64 = r.gen();
                assert!((0.0..1.0).contains(&f));
            }
        }

        #[test]
        fn gen_bool_extremes() {
            let mut r = SmallRng::seed_from_u64(3);
            for _ in 0..100 {
                assert!(r.gen_bool(1.0));
                assert!(!r.gen_bool(0.0));
            }
        }
    }
}
