//! Quickstart: simulate one application on the paper's 1,056-node
//! Dragonfly, then co-run it with an aggressive background and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Environment knobs: `SCALE` (workload scale divisor, default 256 for a
//! fast demo), `SEED` — resolved through the experiment-spec layering, so
//! an invalid value is a hard error, never a silent default.

use dragonfly_interference::prelude::*;

fn main() {
    let spec = ExperimentSpec { scale: 256.0, ..Default::default() }
        .resolve(&[])
        .unwrap_or_else(|e| die(&e));
    let (scale, seed) = (spec.scale, spec.seed);

    println!("Dragonfly 1,056 nodes (33 groups x 8 routers x 4 nodes), scale 1/{scale}");
    println!();

    let cfg = StudyConfig { routing: RoutingAlgo::Par, scale, seed, ..Default::default() };

    // 1. FFT3D alone on half the system.
    let solo = standalone(AppKind::FFT3D, &cfg);
    let fft_solo = &solo.apps[0];
    println!(
        "FFT3D alone      : comm {:>7.3} ms (±{:.3}), exec {:>7.3} ms, {} packets in {:.1}s wall",
        fft_solo.comm_ms.mean,
        fft_solo.comm_ms.std,
        fft_solo.exec_ms,
        fft_solo.latency_us.n,
        solo.wall_s,
    );

    // 2. FFT3D with Halo3D (the paper's most aggressive background).
    let pair = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &cfg);
    let fft = &pair.apps[0];
    println!(
        "FFT3D + Halo3D   : comm {:>7.3} ms (±{:.3}), exec {:>7.3} ms",
        fft.comm_ms.mean, fft.comm_ms.std, fft.exec_ms
    );
    let slowdown = fft.comm_ms.mean / fft_solo.comm_ms.mean;
    println!("                   interference slowdown: {slowdown:.2}x (PAR routing)");
    println!();

    // 3. The same pair under Q-adaptive routing.
    let cfg_q = StudyConfig { routing: RoutingAlgo::QAdaptive, ..cfg };
    let solo_q = standalone(AppKind::FFT3D, &cfg_q);
    let pair_q = pairwise(AppKind::FFT3D, Some(AppKind::Halo3D), &cfg_q);
    let fft_q = &pair_q.apps[0];
    println!(
        "Q-adaptive alone : comm {:>7.3} ms (±{:.3})",
        solo_q.apps[0].comm_ms.mean, solo_q.apps[0].comm_ms.std
    );
    println!("Q-adaptive + bg  : comm {:>7.3} ms (±{:.3})", fft_q.comm_ms.mean, fft_q.comm_ms.std);
    let saving = 100.0 * (1.0 - fft_q.comm_ms.mean / fft.comm_ms.mean);
    println!("                   Q-adaptive saves {saving:.1}% of FFT3D's communication time");
    println!();
    println!(
        "(paper: Halo3D delays FFT3D 2.7x under adaptive routing; Q-adaptive cuts the\n\
         interfered communication time by up to 42.63% — §V-A)"
    );
}
