//! Pairwise interference study (paper §V): pick a target and a background
//! app from the command line, run standalone + co-running under every
//! routing algorithm, and print the Fig-4-style comparison.
//!
//! ```sh
//! cargo run --release --example pairwise_interference -- LQCD Stencil5D
//! SCALE=128 cargo run --release --example pairwise_interference -- FFT3D DL
//! ```

use dragonfly_interference::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let target = args.get(1).and_then(|s| AppKind::from_name(s)).unwrap_or(AppKind::FFT3D);
    let background = args.get(2).and_then(|s| AppKind::from_name(s)).unwrap_or(AppKind::Halo3D);
    let spec = ExperimentSpec { scale: 128.0, ..Default::default() }
        .resolve(&[])
        .unwrap_or_else(|e| die(&e));
    let scale = spec.scale;

    println!("pairwise {target} + {background} @ scale 1/{scale}");
    let mut table = TextTable::new(vec![
        "Routing",
        "alone (ms)",
        "interfered (ms)",
        "slowdown",
        "variation %",
        "p99 latency us",
    ]);
    for routing in RoutingAlgo::PAPER_SET {
        let cfg = StudyConfig { routing, scale, ..Default::default() };
        let alone = pairwise(target, None, &cfg);
        let both = pairwise(target, Some(background), &cfg);
        let a = &alone.apps[0];
        let b = &both.apps[0];
        table.row(vec![
            routing.label().to_string(),
            format!("{:.4}", a.comm_ms.mean),
            format!("{:.4}", b.comm_ms.mean),
            format!("{:.2}x", b.comm_ms.mean / a.comm_ms.mean),
            format!("{:.1}", b.comm_ms.variation_pct()),
            format!("{:.2}", b.latency_us.p99),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading guide (paper §V): high-injection-rate backgrounds (Halo3D, DL) hurt;\n\
         large-peak-ingress targets (LQCD, Stencil5D) resist; Q-adp rows should show\n\
         the smallest interfered times and variation."
    );
}
