//! Peek inside Q-adaptive's learning: run traffic through the network
//! directly (no MPI layer) and dump one router's two-level Q-table before
//! and after, showing how congestion reshapes the learned delivery-time
//! estimates (paper Fig 2).
//!
//! ```sh
//! cargo run --release --example qtable_inspect
//! ```

use dragonfly_interference::des::queue::PendingEvents;
use dragonfly_interference::des::sched::QueueScheduler;
use dragonfly_interference::des::EventQueue;
use dragonfly_interference::network::{NetEvent, QTable};
use dragonfly_interference::prelude::*;
use dragonfly_interference::topology::{GroupId, Port, RouterId};

fn main() {
    let topo = std::sync::Arc::new(Topology::new(DragonflyParams::paper_1056()).unwrap());
    let timing = LinkTiming::default();
    let cfg = RoutingConfig::new(RoutingAlgo::QAdaptive);
    let rng = SimRng::new(7);
    let mut rec = Recorder::new(&topo, RecorderConfig::default());
    let mut net = NetworkSim::new(std::sync::Arc::clone(&topo), timing, cfg, &rng);
    let mut queue: EventQueue<NetEvent> = EventQueue::new();

    let fresh = QTable::new(&topo, RouterId(0), &timing, cfg.qa.alpha);

    // Hammer the direct G0→G1 link with traffic from group 0's nodes to
    // group 1's nodes, plus background from group 2.
    let mut traffic_rng = SimRng::new(99);
    let mut effects = Vec::new();
    for round in 0..400u32 {
        for src in 0..32u32 {
            let dst = 32 + traffic_rng.index(32) as u32; // group 1 nodes
            let mut sched = QueueScheduler::new(&mut queue);
            net.send_message(&mut sched, &mut rec, NodeId(src), NodeId(dst), 4096, AppId(0));
        }
        let _ = round;
        // Drain a slice of events between bursts.
        for _ in 0..4_000 {
            let Some((_, ev)) = queue.pop() else { break };
            let mut sched = QueueScheduler::new(&mut queue);
            net.handle(ev, &mut sched, &mut rec, &mut effects);
            effects.clear();
        }
    }
    while let Some((_, ev)) = queue.pop() {
        let mut sched = QueueScheduler::new(&mut queue);
        net.handle(ev, &mut sched, &mut rec, &mut effects);
        effects.clear();
    }

    let learned = net.router(RouterId(0)).qtable.as_ref().expect("Q-adaptive router");
    println!("router r0 (group 0), destination group G1 — Q-values per port (ns):");
    println!("{:<8} {:>6} {:>12} {:>12} {:>9}", "port", "kind", "initial", "learned", "delta%");
    for p in 4..topo.radix() {
        let port = Port(p);
        let kind = topo.port_kind(port);
        let q0 = fresh.q1(GroupId(1), port) / 1000.0;
        let q1 = learned.q1(GroupId(1), port) / 1000.0;
        println!(
            "{:<8} {:>6} {:>12.1} {:>12.1} {:>8.1}%",
            format!("{port}"),
            format!("{kind}"),
            q0,
            q1,
            100.0 * (q1 / q0 - 1.0),
        );
    }
    println!();
    println!(
        "the direct global port's learned estimate should have inflated (it carried\n\
         all the load), while detour ports stay near their static estimates —\n\
         exactly the signal Q-adaptive routes by."
    );
    let delivered = rec.app(AppId(0)).map(|a| a.packets_delivered).unwrap_or(0);
    println!("({delivered} packets delivered during the exercise)");
}
