//! Peek inside Q-adaptive's learning — now on top of the snapshot API:
//! run traffic through the network directly (no MPI layer), snapshot every
//! router's two-level Q-table, round-trip it through a file, and dump one
//! router's level-1 values before and after training, showing how
//! congestion reshapes the learned delivery-time estimates (paper Fig 2).
//!
//! ```sh
//! cargo run --release --example qtable_inspect
//! ```

use dragonfly_interference::des::queue::PendingEvents;
use dragonfly_interference::des::sched::QueueScheduler;
use dragonfly_interference::des::EventQueue;
use dragonfly_interference::network::{NetEvent, QTable};
use dragonfly_interference::prelude::*;
use dragonfly_interference::topology::{GroupId, Port, RouterId};

fn main() {
    let topo = std::sync::Arc::new(Topology::new(DragonflyParams::paper_1056()).unwrap());
    let timing = LinkTiming::default();
    let cfg = RoutingConfig::new(RoutingAlgo::QAdaptive);
    let alpha = cfg.qa.alpha;
    let rng = SimRng::new(7);
    let mut rec = Recorder::new(&topo, RecorderConfig::default());
    let mut net = NetworkSim::new(std::sync::Arc::clone(&topo), timing, cfg, &rng);
    let mut queue: EventQueue<NetEvent> = EventQueue::new();

    let fresh = QTable::new(&topo, RouterId(0), &timing, alpha);

    // Hammer the direct G0→G1 link with traffic from group 0's nodes to
    // group 1's nodes, plus background from group 2.
    let mut traffic_rng = SimRng::new(99);
    let mut effects = Vec::new();
    for _round in 0..400u32 {
        for src in 0..32u32 {
            let dst = 32 + traffic_rng.index(32) as u32; // group 1 nodes
            let mut sched = QueueScheduler::new(&mut queue);
            net.send_message(&mut sched, &mut rec, NodeId(src), NodeId(dst), 4096, AppId(0));
        }
        // Drain a slice of events between bursts.
        for _ in 0..4_000 {
            let Some((_, ev)) = queue.pop() else { break };
            let mut sched = QueueScheduler::new(&mut queue);
            net.handle(ev, &mut sched, &mut rec, &mut effects);
            effects.clear();
        }
    }
    while let Some((_, ev)) = queue.pop() {
        let mut sched = QueueScheduler::new(&mut queue);
        net.handle(ev, &mut sched, &mut rec, &mut effects);
        effects.clear();
    }

    // Snapshot the learned tables and round-trip them through a file —
    // exactly what `--qtable save=` / `--qtable load=` do.
    let snap = net.qtable_snapshot().expect("Q-adaptive routers carry Q-tables");
    let path = std::env::temp_dir().join(format!("qtable_inspect_{}.snap", std::process::id()));
    snap.save(&path).expect("snapshot write");
    let loaded = QTableSnapshot::load(&path).expect("snapshot read");
    loaded
        .verify(topo.params(), &timing, alpha)
        .expect("fingerprint of a just-saved snapshot must match");
    assert_eq!(snap, loaded, "save -> load must be lossless");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "snapshot: {} routers, alpha {}, {:.1} MB at {} (round-trip verified)\n",
        loaded.num_routers(),
        loaded.alpha(),
        bytes as f64 / 1e6,
        path.display()
    );
    let _ = std::fs::remove_file(&path);

    // The learned values now come out of the *snapshot*, not the live net.
    println!("router r0 (group 0), destination group G1 — Q-values per port (ns):");
    println!("{:<8} {:>6} {:>12} {:>12} {:>9}", "port", "kind", "initial", "learned", "delta%");
    for p in 4..topo.radix() {
        let port = Port(p);
        let kind = topo.port_kind(port);
        let q0 = fresh.q1(GroupId(1), port) / 1000.0;
        let q1 = loaded.q1_of(0, 1, p as usize) / 1000.0;
        println!(
            "{:<8} {:>6} {:>12.1} {:>12.1} {:>8.1}%",
            format!("{port}"),
            format!("{kind}"),
            q0,
            q1,
            100.0 * (q1 / q0 - 1.0),
        );
    }
    println!();
    println!(
        "the direct global port's learned estimate should have inflated (it carried\n\
         all the load), while detour ports stay near their static estimates —\n\
         exactly the signal Q-adaptive routes by. A warm-started run begins from\n\
         these values instead of the 'initial' column."
    );
    let delivered = rec.app(AppId(0)).map(|a| a.packets_delivered).unwrap_or(0);
    let learn = rec.learning();
    println!(
        "({delivered} packets delivered; {} Q1 updates, mean |dQ1| {:.2} ns)",
        learn.updates(),
        learn.mean_abs() / 1e3
    );
}
