//! The Table II mixed workload (paper §VI): six applications with distinct
//! communication patterns co-running on all 1,056 nodes.
//!
//! ```sh
//! cargo run --release --example mixed_workload            # Q-adaptive
//! cargo run --release --example mixed_workload -- PAR
//! ```

use dragonfly_interference::prelude::*;

fn main() {
    let routing = std::env::args()
        .nth(1)
        .map(|s| lookup::<RoutingAlgo>(&s).unwrap_or_else(|e| die(&e)))
        .unwrap_or(RoutingAlgo::QAdaptive);
    let spec = ExperimentSpec { scale: 128.0, ..Default::default() }
        .resolve(&[])
        .unwrap_or_else(|e| die(&e));
    let scale = spec.scale;

    let cfg = StudyConfig { routing, scale, ..Default::default() };
    println!("mixed workload (Table II) under {routing} @ scale 1/{scale}");
    let report = mixed(&cfg);

    let mut t = TextTable::new(vec![
        "App",
        "ranks",
        "comm (ms)",
        "±std",
        "exec (ms)",
        "inj GB/s",
        "detour %",
    ]);
    for a in &report.apps {
        t.row(vec![
            a.name.clone(),
            a.size.to_string(),
            format!("{:.4}", a.comm_ms.mean),
            format!("{:.4}", a.comm_ms.std),
            format!("{:.4}", a.exec_ms),
            format!("{:.1}", a.inj_rate_gbs),
            format!("{:.1}", a.detour_frac * 100.0),
        ]);
    }
    println!("{}", t.render());
    let n = &report.network;
    println!(
        "network: mean aggregate throughput {:.3} GB/ms; system latency mean {:.2} us, \
         p99 {:.2} us;",
        n.mean_system_throughput, n.system_latency_us.mean, n.system_latency_us.p99
    );
    println!(
        "         avg local stall/group {:.4} ms, avg global stall/link {:.5} ms, \
         congestion-index std {:.4}",
        n.avg_local_stall_ms, n.avg_global_stall_ms, n.std_global_congestion
    );
    println!(
        "completed: {} ({} events, {:.1}s wall)",
        report.completed, report.events, report.wall_s
    );
}
