//! Compare all five routing algorithms (the paper's four plus the MIN
//! baseline) on one workload, standalone — the sanity check behind Fig 4's
//! blue bars.
//!
//! ```sh
//! cargo run --release --example routing_comparison -- Halo3D
//! ```

use dragonfly_interference::prelude::*;

fn main() {
    let app = std::env::args().nth(1).and_then(|s| AppKind::from_name(&s)).unwrap_or(AppKind::LU);
    let spec = ExperimentSpec { scale: 128.0, ..Default::default() }
        .resolve(&[])
        .unwrap_or_else(|e| die(&e));
    let scale = spec.scale;
    println!("{app} standalone on 528 nodes @ scale 1/{scale}");

    let mut t = TextTable::new(vec![
        "Routing",
        "comm (ms)",
        "±std",
        "exec (ms)",
        "detour %",
        "mean lat us",
        "p99 lat us",
    ]);
    for routing in [
        RoutingAlgo::Minimal,
        RoutingAlgo::UgalG,
        RoutingAlgo::UgalN,
        RoutingAlgo::Par,
        RoutingAlgo::QAdaptive,
    ] {
        let cfg = StudyConfig { routing, scale, ..Default::default() };
        let r = standalone(app, &cfg);
        let a = &r.apps[0];
        t.row(vec![
            routing.label().to_string(),
            format!("{:.4}", a.comm_ms.mean),
            format!("{:.4}", a.comm_ms.std),
            format!("{:.4}", a.exec_ms),
            format!("{:.1}", a.detour_frac * 100.0),
            format!("{:.2}", a.latency_us.mean),
            format!("{:.2}", a.latency_us.p99),
        ]);
    }
    println!("{}", t.render());
    println!(
        "(paper §V: standalone, Q-adaptive matches or beats adaptive routing — on\n\
         average 23.46% less communication time than PAR for LU/LQCD/Stencil5D/LULESH)"
    );
}
